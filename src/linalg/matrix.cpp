#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/rng.hpp"

namespace parsvd {

// ---------------------------------------------------------------- Vector

Vector::Vector(Index n, double value) {
  PARSVD_REQUIRE(n >= 0, "vector size must be non-negative");
  data_.assign(static_cast<std::size_t>(n), value);
}

Vector::Vector(std::initializer_list<double> values) : data_(values) {}

void Vector::resize(Index n, double value) {
  PARSVD_REQUIRE(n >= 0, "vector size must be non-negative");
  data_.resize(static_cast<std::size_t>(n), value);
}

void Vector::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

Vector Vector::head(Index n) const { return segment(0, n); }

Vector Vector::segment(Index lo, Index n) const {
  PARSVD_REQUIRE(lo >= 0 && n >= 0 && lo + n <= size(), "segment out of range");
  Vector out(n);
  std::copy_n(data_.begin() + lo, n, out.data_.begin());
  return out;
}

double Vector::norm2() const {
  // Scaled accumulation avoids overflow/underflow for extreme entries.
  double scale = 0.0, ssq = 1.0;
  for (double x : data_) {
    if (x == 0.0) continue;
    const double ax = std::fabs(x);
    if (scale < ax) {
      ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
      scale = ax;
    } else {
      ssq += (ax / scale) * (ax / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double Vector::norm_inf() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double Vector::sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector& Vector::operator+=(const Vector& other) {
  PARSVD_REQUIRE(size() == other.size(), "vector size mismatch in +=");
  for (Index i = 0; i < size(); ++i) (*this)[i] += other[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  PARSVD_REQUIRE(size() == other.size(), "vector size mismatch in -=");
  for (Index i = 0; i < size(); ++i) (*this)[i] -= other[i];
  return *this;
}

// ---------------------------------------------------------------- Matrix

Matrix::Matrix(Index rows, Index cols, double value) : rows_(rows), cols_(cols) {
  PARSVD_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), value);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<Index>(rows.size());
  cols_ = rows_ > 0 ? static_cast<Index>(rows.begin()->size()) : 0;
  data_.assign(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_), 0.0);
  Index i = 0;
  for (const auto& r : rows) {
    PARSVD_REQUIRE(static_cast<Index>(r.size()) == cols_,
                   "ragged initializer list for Matrix");
    Index j = 0;
    for (double v : r) (*this)(i, j++) = v;
    ++i;
  }
}

Matrix Matrix::identity(Index n) {
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (Index i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::gaussian(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  rng.fill_gaussian(m.data(), static_cast<std::size_t>(m.size()));
  return m;
}

Vector Matrix::col(Index j) const {
  PARSVD_REQUIRE(j >= 0 && j < cols_, "column index out of range");
  Vector v(rows_);
  std::copy_n(col_data(j), rows_, v.data());
  return v;
}

Vector Matrix::row(Index i) const {
  PARSVD_REQUIRE(i >= 0 && i < rows_, "row index out of range");
  Vector v(cols_);
  for (Index j = 0; j < cols_; ++j) v[j] = (*this)(i, j);
  return v;
}

Matrix Matrix::block(Index row0, Index col0, Index nrows, Index ncols) const {
  PARSVD_REQUIRE(row0 >= 0 && col0 >= 0 && nrows >= 0 && ncols >= 0 &&
                     row0 + nrows <= rows_ && col0 + ncols <= cols_,
                 "block out of range");
  Matrix out(nrows, ncols);
  for (Index j = 0; j < ncols; ++j) {
    std::copy_n(col_data(col0 + j) + row0, nrows, out.col_data(j));
  }
  return out;
}

void Matrix::set_col(Index j, const Vector& v) {
  PARSVD_REQUIRE(j >= 0 && j < cols_, "column index out of range");
  PARSVD_REQUIRE(v.size() == rows_, "column length mismatch");
  std::copy_n(v.data(), rows_, col_data(j));
}

void Matrix::set_row(Index i, const Vector& v) {
  PARSVD_REQUIRE(i >= 0 && i < rows_, "row index out of range");
  PARSVD_REQUIRE(v.size() == cols_, "row length mismatch");
  for (Index j = 0; j < cols_; ++j) (*this)(i, j) = v[j];
}

void Matrix::set_block(Index row0, Index col0, const Matrix& m) {
  PARSVD_REQUIRE(row0 >= 0 && col0 >= 0 && row0 + m.rows() <= rows_ &&
                     col0 + m.cols() <= cols_,
                 "block target out of range");
  for (Index j = 0; j < m.cols(); ++j) {
    std::copy_n(m.col_data(j), m.rows(), col_data(col0 + j) + row0);
  }
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::resize(Index rows, Index cols, double value) {
  PARSVD_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), value);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  // Simple cache-blocked transpose.
  constexpr Index kBlock = 32;
  for (Index jb = 0; jb < cols_; jb += kBlock) {
    const Index jmax = std::min(cols_, jb + kBlock);
    for (Index ib = 0; ib < rows_; ib += kBlock) {
      const Index imax = std::min(rows_, ib + kBlock);
      for (Index j = jb; j < jmax; ++j) {
        for (Index i = ib; i < imax; ++i) {
          out(j, i) = (*this)(i, j);
        }
      }
    }
  }
  return out;
}

double Matrix::norm_fro() const {
  double scale = 0.0, ssq = 1.0;
  for (double x : data_) {
    if (x == 0.0) continue;
    const double ax = std::fabs(x);
    if (scale < ax) {
      ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
      scale = ax;
    } else {
      ssq += (ax / scale) * (ax / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double Matrix::norm_inf() const {
  double best = 0.0;
  for (Index i = 0; i < rows_; ++i) {
    double rowsum = 0.0;
    for (Index j = 0; j < cols_; ++j) rowsum += std::fabs((*this)(i, j));
    best = std::max(best, rowsum);
  }
  return best;
}

double Matrix::norm_max() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  PARSVD_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "shape mismatch in Matrix +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  PARSVD_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "shape mismatch in Matrix -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

std::string Matrix::to_string(Index max_dim) const {
  std::string out = "Matrix " + std::to_string(rows_) + "x" + std::to_string(cols_) + "\n";
  const Index show_r = std::min(rows_, max_dim);
  const Index show_c = std::min(cols_, max_dim);
  char buf[64];
  for (Index i = 0; i < show_r; ++i) {
    out += "  [";
    for (Index j = 0; j < show_c; ++j) {
      std::snprintf(buf, sizeof(buf), "%12.5g", (*this)(i, j));
      out += buf;
      if (j + 1 < show_c) out += ' ';
    }
    out += cols_ > show_c ? " ...]\n" : "]\n";
  }
  if (rows_ > show_r) out += "  ...\n";
  return out;
}

// ----------------------------------------------------------- free helpers

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(double s, const Matrix& a) {
  Matrix out = a;
  out *= s;
  return out;
}

Vector operator+(const Vector& a, const Vector& b) {
  Vector out = a;
  out += b;
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  Vector out = a;
  out -= b;
  return out;
}

Vector operator*(double s, const Vector& a) {
  Vector out = a;
  out *= s;
  return out;
}

Matrix hcat(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  PARSVD_REQUIRE(a.rows() == b.rows(), "hcat row mismatch");
  Matrix out(a.rows(), a.cols() + b.cols());
  out.set_block(0, 0, a);
  out.set_block(0, a.cols(), b);
  return out;
}

Matrix vcat(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  PARSVD_REQUIRE(a.cols() == b.cols(), "vcat column mismatch");
  Matrix out(a.rows() + b.rows(), a.cols());
  out.set_block(0, 0, a);
  out.set_block(a.rows(), 0, b);
  return out;
}

Matrix hcat(const std::vector<Matrix>& blocks) {
  Matrix out;
  for (const auto& b : blocks) out = hcat(out, b);
  return out;
}

Matrix vcat(const std::vector<Matrix>& blocks) {
  Matrix out;
  for (const auto& b : blocks) out = vcat(out, b);
  return out;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  PARSVD_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                 "shape mismatch in max_abs_diff");
  double m = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (Index i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(pa[i] - pb[i]));
  return m;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  PARSVD_REQUIRE(a.size() == b.size(), "size mismatch in max_abs_diff");
  double m = 0.0;
  for (Index i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace parsvd
