#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/env.hpp"
#include "support/thread_pool.hpp"

namespace parsvd {

double dot(std::span<const double> x, std::span<const double> y) {
  PARSVD_REQUIRE(x.size() == y.size(), "dot: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  PARSVD_REQUIRE(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double nrm2(std::span<const double> x) {
  double scale = 0.0, ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double av = std::fabs(v);
    if (scale < av) {
      ssq = 1.0 + ssq * (scale / av) * (scale / av);
      scale = av;
    } else {
      ssq += (av / scale) * (av / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

namespace {

bool pool_available() { return ThreadPool::global().size() > 0; }

void gemv_notrans_rows(const Matrix& a, double alpha,
                       std::span<const double> x, double beta,
                       std::span<double> y, Index i0, Index i1) {
  if (beta != 1.0) {
    for (Index i = i0; i < i1; ++i) {
      y[static_cast<std::size_t>(i)] =
          (beta == 0.0) ? 0.0 : beta * y[static_cast<std::size_t>(i)];
    }
  }
  const Index n = a.cols();
  // Column-major: accumulate one column segment at a time (unit stride).
  for (Index j = 0; j < n; ++j) {
    const double xj = alpha * x[static_cast<std::size_t>(j)];
    if (xj == 0.0) continue;
    const double* colj = a.col_data(j);
    for (Index i = i0; i < i1; ++i) y[static_cast<std::size_t>(i)] += xj * colj[i];
  }
}

void gemv_trans_cols(const Matrix& a, double alpha, std::span<const double> x,
                     double beta, std::span<double> y, Index j0, Index j1) {
  const Index m = a.rows();
  for (Index j = j0; j < j1; ++j) {
    const double* colj = a.col_data(j);
    double s = 0.0;
    for (Index i = 0; i < m; ++i) s += colj[i] * x[static_cast<std::size_t>(i)];
    y[static_cast<std::size_t>(j)] =
        alpha * s + ((beta == 0.0) ? 0.0 : beta * y[static_cast<std::size_t>(j)]);
  }
}

}  // namespace

void gemv(Trans trans_a, double alpha, const Matrix& a,
          std::span<const double> x, double beta, std::span<double> y) {
  const Index m = a.rows();
  const Index n = a.cols();
  const bool parallel = m * n >= kGemvParallelThreshold && pool_available();
  if (trans_a == Trans::No) {
    PARSVD_REQUIRE(static_cast<Index>(x.size()) == n &&
                       static_cast<Index>(y.size()) == m,
                   "gemv: shape mismatch");
    if (parallel) {
      ThreadPool::global().parallel_for(
          0, static_cast<std::size_t>(m), [&](std::size_t lo, std::size_t hi) {
            gemv_notrans_rows(a, alpha, x, beta, y, static_cast<Index>(lo),
                              static_cast<Index>(hi));
          });
    } else {
      gemv_notrans_rows(a, alpha, x, beta, y, 0, m);
    }
  } else {
    PARSVD_REQUIRE(static_cast<Index>(x.size()) == m &&
                       static_cast<Index>(y.size()) == n,
                   "gemv^T: shape mismatch");
    if (parallel) {
      ThreadPool::global().parallel_for(
          0, static_cast<std::size_t>(n), [&](std::size_t lo, std::size_t hi) {
            gemv_trans_cols(a, alpha, x, beta, y, static_cast<Index>(lo),
                            static_cast<Index>(hi));
          });
    } else {
      gemv_trans_cols(a, alpha, x, beta, y, 0, n);
    }
  }
}

void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a) {
  PARSVD_REQUIRE(static_cast<Index>(x.size()) == a.rows() &&
                     static_cast<Index>(y.size()) == a.cols(),
                 "ger: shape mismatch");
  for (Index j = 0; j < a.cols(); ++j) {
    const double yj = alpha * y[static_cast<std::size_t>(j)];
    if (yj == 0.0) continue;
    double* colj = a.col_data(j);
    for (Index i = 0; i < a.rows(); ++i) colj[i] += yj * x[static_cast<std::size_t>(i)];
  }
}

// ===================================================== packed GEMM engine
//
// BLIS-style structure: op(A) macro-panels (MC x KC) and op(B) macro-panels
// (KC x NC) are packed into contiguous, transpose-resolved, zero-padded
// buffers, and an MR x NR register-tiled micro-kernel accumulates C tiles
// over the full KC depth before touching memory. Cache block sizes are
// env-tunable; the micro tile is fixed at compile time so the accumulators
// live in registers.

namespace {

// Micro-tile: MR rows (contiguous in packed A and in column-major C) by
// NR columns. 8x6 doubles = 12 AVX2 / 6 AVX-512 accumulator vectors.
constexpr Index kMicroRows = 8;
constexpr Index kMicroCols = 6;

// Element (r, c) of op(M) lives at data[r * stride_row + c * stride_col].
struct OpView {
  const double* data;
  Index stride_row;
  Index stride_col;

  double at(Index r, Index c) const { return data[r * stride_row + c * stride_col]; }
  OpView shifted_cols(Index c0) const { return {data + c0 * stride_col, stride_row, stride_col}; }
};

OpView make_view(const double* data, Index ld, Trans t) {
  if (t == Trans::No) return {data, 1, ld};
  return {data, ld, 1};
}

Index round_up(Index v, Index to) { return (v + to - 1) / to * to; }

struct GemmBlocking {
  Index mc, kc, nc;
};

const GemmBlocking& blocking() {
  static const GemmBlocking blk = [] {
    GemmBlocking b;
    b.mc = round_up(std::clamp<Index>(env::get_int("PARSVD_GEMM_MC", 96), kMicroRows, 4096),
                    kMicroRows);
    b.kc = std::clamp<Index>(env::get_int("PARSVD_GEMM_KC", 256), 8, 8192);
    b.nc = round_up(std::clamp<Index>(env::get_int("PARSVD_GEMM_NC", 4032), kMicroCols, 1 << 16),
                    kMicroCols);
    return b;
  }();
  return blk;
}

// Pack op(A)(i0:i0+mc, p0:p0+kc) into kMicroRows-wide micro-panels with
// alpha folded in; short edge panels are zero-padded so the micro-kernel
// never needs a bounds check on its accumulate loop.
void pack_a(const OpView& a, Index i0, Index mc, Index p0, Index kc,
            double alpha, double* buf) {
  for (Index i = 0; i < mc; i += kMicroRows) {
    const Index mr = std::min(kMicroRows, mc - i);
    if (a.stride_row == 1 && mr == kMicroRows && alpha == 1.0) {
      // op(A) columns are contiguous: straight 8-element copies.
      const double* src = a.data + (i0 + i) + p0 * a.stride_col;
      for (Index p = 0; p < kc; ++p) {
        double* dst = buf + p * kMicroRows;
        const double* col = src + p * a.stride_col;
        for (Index r = 0; r < kMicroRows; ++r) dst[r] = col[r];
      }
    } else {
      for (Index p = 0; p < kc; ++p) {
        double* dst = buf + p * kMicroRows;
        for (Index r = 0; r < mr; ++r) dst[r] = alpha * a.at(i0 + i + r, p0 + p);
        for (Index r = mr; r < kMicroRows; ++r) dst[r] = 0.0;
      }
    }
    buf += kc * kMicroRows;
  }
}

// Pack op(B)(p0:p0+kc, j0:j0+nc) into kMicroCols-wide micro-panels
// (zero-padded on the column edge).
void pack_b(const OpView& b, Index p0, Index kc, Index j0, Index nc,
            double* buf) {
  for (Index j = 0; j < nc; j += kMicroCols) {
    const Index nr = std::min(kMicroCols, nc - j);
    for (Index p = 0; p < kc; ++p) {
      double* dst = buf + p * kMicroCols;
      for (Index c = 0; c < nr; ++c) dst[c] = b.at(p0 + p, j0 + j + c);
      for (Index c = nr; c < kMicroCols; ++c) dst[c] = 0.0;
    }
    buf += kc * kMicroCols;
  }
}

// C(mr x nr tile at `c`, leading dim ldc) += A-panel * B-panel over depth
// kc. The accumulate loop always runs the full tile (padding makes the
// extra lanes harmless); only the store is edge-bounded.
#if defined(__GNUC__) || defined(__clang__)
#define PARSVD_GEMM_VECTOR_EXT 1
// One packed-A micro-row as a GCC/Clang generic vector. alignment 8 keeps
// loads unaligned-safe; the compiler lowers to the widest SIMD the target
// arch offers (one zmm on AVX-512, two ymm on AVX2, four xmm on SSE2).
// gcc 12 will not promote a double[6][8] accumulator array out of memory,
// so this formulation is worth ~15x over the portable loop below.
typedef double MicroRow __attribute__((vector_size(kMicroRows * sizeof(double)),
                                       aligned(8)));

void micro_kernel(Index kc, const double* a_panel, const double* b_panel,
                  double* c, Index ldc, Index mr, Index nr) {
  static_assert(kMicroCols == 6, "accumulator count is hand-unrolled");
  MicroRow acc0 = {}, acc1 = {}, acc2 = {}, acc3 = {}, acc4 = {}, acc5 = {};
  for (Index p = 0; p < kc; ++p) {
    const MicroRow a = *reinterpret_cast<const MicroRow*>(a_panel + p * kMicroRows);
    const double* b = b_panel + p * kMicroCols;
    acc0 += a * b[0];
    acc1 += a * b[1];
    acc2 += a * b[2];
    acc3 += a * b[3];
    acc4 += a * b[4];
    acc5 += a * b[5];
  }
  const MicroRow acc[kMicroCols] = {acc0, acc1, acc2, acc3, acc4, acc5};
  if (mr == kMicroRows && nr == kMicroCols) {
    for (Index j = 0; j < kMicroCols; ++j) {
      double* cj = c + j * ldc;
      for (Index i = 0; i < kMicroRows; ++i) cj[i] += acc[j][i];
    }
  } else {
    for (Index j = 0; j < nr; ++j) {
      double* cj = c + j * ldc;
      for (Index i = 0; i < mr; ++i) cj[i] += acc[j][i];
    }
  }
}
#else
void micro_kernel(Index kc, const double* a_panel, const double* b_panel,
                  double* c, Index ldc, Index mr, Index nr) {
  double acc[kMicroCols][kMicroRows] = {};
  for (Index p = 0; p < kc; ++p) {
    const double* a = a_panel + p * kMicroRows;
    const double* b = b_panel + p * kMicroCols;
    for (Index j = 0; j < kMicroCols; ++j) {
      const double bj = b[j];
      for (Index i = 0; i < kMicroRows; ++i) acc[j][i] += a[i] * bj;
    }
  }
  if (mr == kMicroRows && nr == kMicroCols) {
    for (Index j = 0; j < kMicroCols; ++j) {
      double* cj = c + j * ldc;
      for (Index i = 0; i < kMicroRows; ++i) cj[i] += acc[j][i];
    }
  } else {
    for (Index j = 0; j < nr; ++j) {
      double* cj = c + j * ldc;
      for (Index i = 0; i < mr; ++i) cj[i] += acc[j][i];
    }
  }
}
#endif  // PARSVD_GEMM_VECTOR_EXT

// Serial packed driver over one contiguous column range of C.
void gemm_packed_serial(const OpView& va, const OpView& vb, Index m, Index n,
                        Index k, double alpha, double* c, Index ldc) {
  const GemmBlocking& blk = blocking();
  const Index mc_max = std::min(round_up(m, kMicroRows), blk.mc);
  const Index nc_max = std::min(round_up(n, kMicroCols), blk.nc);
  const Index kc_max = std::min(k, blk.kc);
  std::vector<double> apack(static_cast<std::size_t>(mc_max * kc_max));
  std::vector<double> bpack(static_cast<std::size_t>(nc_max * kc_max));

  for (Index jc = 0; jc < n; jc += blk.nc) {
    const Index nc = std::min(blk.nc, n - jc);
    for (Index pc = 0; pc < k; pc += blk.kc) {
      const Index kc = std::min(blk.kc, k - pc);
      pack_b(vb, pc, kc, jc, nc, bpack.data());
      for (Index ic = 0; ic < m; ic += blk.mc) {
        const Index mc = std::min(blk.mc, m - ic);
        pack_a(va, ic, mc, pc, kc, alpha, apack.data());
        for (Index jr = 0; jr < nc; jr += kMicroCols) {
          const Index nr = std::min(kMicroCols, nc - jr);
          const double* bp = bpack.data() + (jr / kMicroCols) * kc * kMicroCols;
          for (Index ir = 0; ir < mc; ir += kMicroRows) {
            const Index mr = std::min(kMicroRows, mc - ir);
            const double* ap = apack.data() + (ir / kMicroRows) * kc * kMicroRows;
            micro_kernel(kc, ap, bp, c + (ic + ir) + (jc + jr) * ldc, ldc, mr, nr);
          }
        }
      }
    }
  }
}

// Unpacked fallback for tiny products where packing/allocation overhead
// would dominate (streaming updates issue many single-digit-size GEMMs).
void gemm_small_serial(const OpView& va, const OpView& vb, Index m, Index n,
                       Index k, double alpha, double* c, Index ldc) {
  for (Index j = 0; j < n; ++j) {
    double* cj = c + j * ldc;
    for (Index p = 0; p < k; ++p) {
      const double bpj = alpha * vb.at(p, j);
      if (bpj == 0.0) continue;
      const double* arow = va.data + p * va.stride_col;
      if (va.stride_row == 1) {
        for (Index i = 0; i < m; ++i) cj[i] += bpj * arow[i];
      } else {
        for (Index i = 0; i < m; ++i) cj[i] += bpj * arow[i * va.stride_row];
      }
    }
  }
}

constexpr Index kGemmPackThreshold = 24 * 24 * 24;

}  // namespace

namespace detail {

void gemm_accumulate(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
                     double alpha, const double* a, Index lda,
                     const double* b, Index ldb, double* c, Index ldc,
                     bool allow_parallel) {
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;
  const OpView va = make_view(a, lda, trans_a);
  const OpView vb = make_view(b, ldb, trans_b);

  const Index flops_proxy = m * n * k;
  if (flops_proxy < kGemmPackThreshold) {
    gemm_small_serial(va, vb, m, n, k, alpha, c, ldc);
    return;
  }

  if (allow_parallel && flops_proxy >= kGemmParallelThreshold && pool_available()) {
    // Partition over disjoint column panels of C: one chunk per pool slot,
    // each running the full packed structure on its slice (thread-local
    // packing buffers, no synchronization on writes).
    const std::size_t slots = ThreadPool::global().size() + 1;
    const std::size_t grain =
        round_up((static_cast<Index>(n) + static_cast<Index>(slots) - 1) /
                     static_cast<Index>(slots),
                 kMicroCols);
    ThreadPool::global().parallel_for(
        0, static_cast<std::size_t>(n),
        [&](std::size_t lo, std::size_t hi) {
          const Index j0 = static_cast<Index>(lo);
          gemm_packed_serial(va, vb.shifted_cols(j0), m,
                             static_cast<Index>(hi) - j0, k, alpha,
                             c + j0 * ldc, ldc);
        },
        grain);
  } else {
    gemm_packed_serial(va, vb, m, n, k, alpha, c, ldc);
  }
}

}  // namespace detail

void gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix& c) {
  const Index m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const Index k = (trans_a == Trans::No) ? a.cols() : a.rows();
  const Index kb = (trans_b == Trans::No) ? b.rows() : b.cols();
  const Index n = (trans_b == Trans::No) ? b.cols() : b.rows();
  PARSVD_REQUIRE(k == kb, "gemm: inner dimension mismatch");
  PARSVD_REQUIRE(c.rows() == m && c.cols() == n, "gemm: C has wrong shape");
  PARSVD_REQUIRE(!c.aliases(a) && !c.aliases(b),
                 "gemm: C must not alias A or B");

  PARSVD_TRACE_SCOPE("linalg.gemm");
  static obs::Counter& calls = obs::Registry::global().counter("linalg.gemm.calls");
  static obs::Counter& flops = obs::Registry::global().counter("linalg.gemm.flops");
  calls.add(1);
  flops.add(2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(k));

  if (beta != 1.0) {
    if (beta == 0.0) {
      c.fill(0.0);
    } else {
      c *= beta;
    }
  }
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  detail::gemm_accumulate(trans_a, trans_b, m, n, k, alpha, a.data(),
                          a.rows(), b.data(), b.rows(), c.data(), c.rows());
}

Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a, Trans trans_b) {
  const Index m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const Index n = (trans_b == Trans::No) ? b.cols() : b.rows();
  Matrix c(m, n);
  gemm(trans_a, trans_b, 1.0, a, b, 0.0, c);
  return c;
}

Matrix gram(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  Matrix g(n, n);
  if (n == 0) return g;
  PARSVD_TRACE_SCOPE("linalg.gram");
  static obs::Counter& flops = obs::Registry::global().counter("linalg.gemm.flops");
  flops.add(static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(m));

  // Column-block width for the upper-triangle sweep: block J computes
  // G(0:j1, J) = Aᵀ(:, 0:j1)ᵀ-style panel product through the packed
  // kernel; the strict lower triangle is mirrored afterwards.
  constexpr Index kGramBlock = 48;
  const Index nblocks = (n + kGramBlock - 1) / kGramBlock;
  auto run_blocks = [&](Index b0, Index b1) {
    for (Index blk = b0; blk < b1; ++blk) {
      const Index j0 = blk * kGramBlock;
      const Index j1 = std::min(n, j0 + kGramBlock);
      detail::gemm_accumulate(Trans::Yes, Trans::No, j1, j1 - j0, m, 1.0,
                              a.data(), m, a.col_data(j0), m, g.col_data(j0),
                              n, /*allow_parallel=*/false);
    }
  };

  // The triangle halves the flops: n*n*m/2 against the GEMM threshold.
  if (n * n * m / 2 >= kGemmParallelThreshold && pool_available() && nblocks > 1) {
    ThreadPool::global().parallel_for(
        0, static_cast<std::size_t>(nblocks),
        [&](std::size_t lo, std::size_t hi) {
          run_blocks(static_cast<Index>(lo), static_cast<Index>(hi));
        },
        /*grain=*/1);  // later blocks are taller; unit grain load-balances
  } else {
    run_blocks(0, nblocks);
  }

  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) g(j, i) = g(i, j);
  }
  return g;
}

}  // namespace parsvd
