#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>

#include "support/thread_pool.hpp"

namespace parsvd {

double dot(std::span<const double> x, std::span<const double> y) {
  PARSVD_REQUIRE(x.size() == y.size(), "dot: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  PARSVD_REQUIRE(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double nrm2(std::span<const double> x) {
  double scale = 0.0, ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double av = std::fabs(v);
    if (scale < av) {
      ssq = 1.0 + ssq * (scale / av) * (scale / av);
      scale = av;
    } else {
      ssq += (av / scale) * (av / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

void gemv(Trans trans_a, double alpha, const Matrix& a,
          std::span<const double> x, double beta, std::span<double> y) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (trans_a == Trans::No) {
    PARSVD_REQUIRE(static_cast<Index>(x.size()) == n &&
                       static_cast<Index>(y.size()) == m,
                   "gemv: shape mismatch");
    for (Index i = 0; i < m; ++i) y[static_cast<std::size_t>(i)] *= beta;
    // Column-major: accumulate one column at a time (unit stride).
    for (Index j = 0; j < n; ++j) {
      const double xj = alpha * x[static_cast<std::size_t>(j)];
      if (xj == 0.0) continue;
      const double* colj = a.col_data(j);
      for (Index i = 0; i < m; ++i) y[static_cast<std::size_t>(i)] += xj * colj[i];
    }
  } else {
    PARSVD_REQUIRE(static_cast<Index>(x.size()) == m &&
                       static_cast<Index>(y.size()) == n,
                   "gemv^T: shape mismatch");
    for (Index j = 0; j < n; ++j) {
      const double* colj = a.col_data(j);
      double s = 0.0;
      for (Index i = 0; i < m; ++i) s += colj[i] * x[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(j)] = alpha * s + beta * y[static_cast<std::size_t>(j)];
    }
  }
}

void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a) {
  PARSVD_REQUIRE(static_cast<Index>(x.size()) == a.rows() &&
                     static_cast<Index>(y.size()) == a.cols(),
                 "ger: shape mismatch");
  for (Index j = 0; j < a.cols(); ++j) {
    const double yj = alpha * y[static_cast<std::size_t>(j)];
    if (yj == 0.0) continue;
    double* colj = a.col_data(j);
    for (Index i = 0; i < a.rows(); ++i) colj[i] += yj * x[static_cast<std::size_t>(i)];
  }
}

namespace {

// Inner kernel: C[mb x nb] += alpha * A[mb x kb] * B[kb x nb] where the
// operands have already been packed / resolved to plain-index accessors.
// We keep the kernel generic over the four transpose combinations by
// resolving strides up front: element (i, k) of op(A) lives at
// a_data[i * a_ri + k * a_rk].
struct OpView {
  const double* data;
  Index stride_row;  // step when the op-row index advances
  Index stride_col;  // step when the op-col index advances

  double at(Index r, Index c) const { return data[r * stride_row + c * stride_col]; }
};

OpView make_view(const Matrix& m, Trans t) {
  if (t == Trans::No) return {m.data(), 1, m.rows()};
  return {m.data(), m.rows(), 1};
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix& c) {
  const Index m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const Index k = (trans_a == Trans::No) ? a.cols() : a.rows();
  const Index kb = (trans_b == Trans::No) ? b.rows() : b.cols();
  const Index n = (trans_b == Trans::No) ? b.cols() : b.rows();
  PARSVD_REQUIRE(k == kb, "gemm: inner dimension mismatch");
  PARSVD_REQUIRE(c.rows() == m && c.cols() == n, "gemm: C has wrong shape");

  if (beta != 1.0) {
    if (beta == 0.0) {
      c.fill(0.0);
    } else {
      c *= beta;
    }
  }
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  const OpView va = make_view(a, trans_a);
  const OpView vb = make_view(b, trans_b);

  // Work is partitioned over column panels of C (disjoint writes, so the
  // parallel path needs no synchronization).
  auto run_panel = [&](Index j0, Index j1) {
    constexpr Index kBlockK = 128;
    constexpr Index kBlockI = 128;
    for (Index jb = j0; jb < j1; ++jb) {
      double* cj = c.col_data(jb);
      for (Index k0 = 0; k0 < k; k0 += kBlockK) {
        const Index k1 = std::min(k, k0 + kBlockK);
        for (Index i0 = 0; i0 < m; i0 += kBlockI) {
          const Index i1 = std::min(m, i0 + kBlockI);
          for (Index kk = k0; kk < k1; ++kk) {
            const double bkj = alpha * vb.at(kk, jb);
            if (bkj == 0.0) continue;
            const double* arow = va.data + kk * va.stride_col;
            if (va.stride_row == 1) {
              // op(A) column kk is contiguous: vectorizable axpy.
              for (Index i = i0; i < i1; ++i) cj[i] += bkj * arow[i];
            } else {
              for (Index i = i0; i < i1; ++i) {
                cj[i] += bkj * arow[i * va.stride_row];
              }
            }
          }
        }
      }
    }
  };

  const Index flops_proxy = m * n * k;
  if (flops_proxy >= kGemmParallelThreshold && ThreadPool::global().size() > 0) {
    ThreadPool::global().parallel_for(
        0, static_cast<std::size_t>(n),
        [&](std::size_t lo, std::size_t hi) {
          run_panel(static_cast<Index>(lo), static_cast<Index>(hi));
        });
  } else {
    run_panel(0, n);
  }
}

Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a, Trans trans_b) {
  const Index m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const Index n = (trans_b == Trans::No) ? b.cols() : b.rows();
  Matrix c(m, n);
  gemm(trans_a, trans_b, 1.0, a, b, 0.0, c);
  return c;
}

Matrix gram(const Matrix& a) {
  const Index n = a.cols();
  Matrix g(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) {
      const double v = dot(a.col_span(i), a.col_span(j));
      g(i, j) = v;
      g(j, i) = v;
    }
  }
  return g;
}

}  // namespace parsvd
