#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/gemm_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/env.hpp"
#include "support/thread_pool.hpp"

namespace parsvd {

const char* to_string(Precision p) {
  switch (p) {
    case Precision::Double: return "double";
    case Precision::Single: return "single";
    case Precision::Mixed: return "mixed";
  }
  return "double";
}

Precision precision_from_string(std::string_view s) {
  if (s == "double") return Precision::Double;
  if (s == "single") return Precision::Single;
  if (s == "mixed") return Precision::Mixed;
  throw Error("unknown precision '" + std::string(s) +
              "' (expected double | single | mixed)");
}

Precision default_precision() {
  static const Precision p =
      precision_from_string(env::get_string("PARSVD_PRECISION", "double"));
  return p;
}

bool compensated_enabled() {
  static const bool on = env::get_bool("PARSVD_COMPENSATED", false);
  return on;
}

MatrixF to_single(const Matrix& a) {
  MatrixF f(a.rows(), a.cols());
  const double* src = a.data();
  float* dst = f.data();
  const Index n = a.size();
  for (Index i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
  return f;
}

Matrix to_double(const MatrixF& a) {
  Matrix d(a.rows(), a.cols());
  const float* src = a.data();
  double* dst = d.data();
  const Index n = a.size();
  for (Index i = 0; i < n; ++i) dst[i] = static_cast<double>(src[i]);
  return d;
}

namespace {

double dot_naive(std::span<const double> x, std::span<const double> y) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

// Ogita–Rump–Oishi Dot2 core: error-free two-prod (FMA) and two-sum with
// a single running compensation term — the result is as accurate as if
// the sum were formed in roughly twice the working precision.
double dot2(const double* x, const double* y, std::size_t n) {
  double s = 0.0;
  double comp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = x[i] * y[i];
    const double ep = std::fma(x[i], y[i], -p);  // exact product error
    const double t = s + p;
    const double z = t - s;
    const double es = (s - (t - z)) + (p - z);   // exact sum error
    s = t;
    comp += ep + es;
  }
  return s + comp;
}

}  // namespace

double dot(std::span<const double> x, std::span<const double> y) {
  PARSVD_REQUIRE(x.size() == y.size(), "dot: length mismatch");
  if (compensated_enabled()) return dot_compensated(x, y);
  return dot_naive(x, y);
}

double dot_compensated(std::span<const double> x, std::span<const double> y) {
  PARSVD_REQUIRE(x.size() == y.size(), "dot_compensated: length mismatch");
  static obs::Counter& calls =
      obs::Registry::global().counter("linalg.dot_compensated.calls");
  static obs::Counter& flops =
      obs::Registry::global().counter("linalg.dot_compensated.flops");
  calls.add(1);
  // Dot2 spends ~8 flops per element (2 for the product pair, 6 for the
  // compensated sum) against naive dot's 2.
  flops.add(8ull * static_cast<std::uint64_t>(x.size()));
  return dot2(x.data(), y.data(), x.size());
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  PARSVD_REQUIRE(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double nrm2(std::span<const double> x) {
  double scale = 0.0, ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double av = std::fabs(v);
    if (scale < av) {
      ssq = 1.0 + ssq * (scale / av) * (scale / av);
      scale = av;
    } else {
      ssq += (av / scale) * (av / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

namespace {

bool pool_available() { return ThreadPool::global().size() > 0; }

void gemv_notrans_rows(const Matrix& a, double alpha,
                       std::span<const double> x, double beta,
                       std::span<double> y, Index i0, Index i1) {
  if (beta != 1.0) {
    for (Index i = i0; i < i1; ++i) {
      y[static_cast<std::size_t>(i)] =
          (beta == 0.0) ? 0.0 : beta * y[static_cast<std::size_t>(i)];
    }
  }
  const Index n = a.cols();
  // Column-major: accumulate one column segment at a time (unit stride).
  for (Index j = 0; j < n; ++j) {
    const double xj = alpha * x[static_cast<std::size_t>(j)];
    if (xj == 0.0) continue;
    const double* colj = a.col_data(j);
    for (Index i = i0; i < i1; ++i) y[static_cast<std::size_t>(i)] += xj * colj[i];
  }
}

void gemv_trans_cols(const Matrix& a, double alpha, std::span<const double> x,
                     double beta, std::span<double> y, Index j0, Index j1) {
  const Index m = a.rows();
  for (Index j = j0; j < j1; ++j) {
    const double* colj = a.col_data(j);
    double s = 0.0;
    for (Index i = 0; i < m; ++i) s += colj[i] * x[static_cast<std::size_t>(i)];
    y[static_cast<std::size_t>(j)] =
        alpha * s + ((beta == 0.0) ? 0.0 : beta * y[static_cast<std::size_t>(j)]);
  }
}

}  // namespace

void gemv(Trans trans_a, double alpha, const Matrix& a,
          std::span<const double> x, double beta, std::span<double> y) {
  const Index m = a.rows();
  const Index n = a.cols();
  const bool parallel = m * n >= kGemvParallelThreshold && pool_available();
  if (trans_a == Trans::No) {
    PARSVD_REQUIRE(static_cast<Index>(x.size()) == n &&
                       static_cast<Index>(y.size()) == m,
                   "gemv: shape mismatch");
    if (parallel) {
      ThreadPool::global().parallel_for(
          0, static_cast<std::size_t>(m), [&](std::size_t lo, std::size_t hi) {
            gemv_notrans_rows(a, alpha, x, beta, y, static_cast<Index>(lo),
                              static_cast<Index>(hi));
          });
    } else {
      gemv_notrans_rows(a, alpha, x, beta, y, 0, m);
    }
  } else {
    PARSVD_REQUIRE(static_cast<Index>(x.size()) == m &&
                       static_cast<Index>(y.size()) == n,
                   "gemv^T: shape mismatch");
    if (parallel) {
      ThreadPool::global().parallel_for(
          0, static_cast<std::size_t>(n), [&](std::size_t lo, std::size_t hi) {
            gemv_trans_cols(a, alpha, x, beta, y, static_cast<Index>(lo),
                            static_cast<Index>(hi));
          });
    } else {
      gemv_trans_cols(a, alpha, x, beta, y, 0, n);
    }
  }
}

void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a) {
  PARSVD_REQUIRE(static_cast<Index>(x.size()) == a.rows() &&
                     static_cast<Index>(y.size()) == a.cols(),
                 "ger: shape mismatch");
  for (Index j = 0; j < a.cols(); ++j) {
    const double yj = alpha * y[static_cast<std::size_t>(j)];
    if (yj == 0.0) continue;
    double* colj = a.col_data(j);
    for (Index i = 0; i < a.rows(); ++i) colj[i] += yj * x[static_cast<std::size_t>(i)];
  }
}

// ===================================================== packed GEMM engine
//
// The engine itself lives in linalg/gemm_engine.hpp (precision-templated
// packing + micro-kernels). This file instantiates the candidate micro
// tiles per precision and dispatches through a table keyed on the active
// autotune profile, which is how the autotuner sweeps the compile-time
// micro shape without recompiling.

namespace {

template <typename T>
using PackedFn = void (*)(const detail::OpViewT<T>&, const detail::OpViewT<T>&,
                          Index, Index, Index, T, T*, Index,
                          const detail::EngineBlocking&);

template <typename T>
struct KernelEntry {
  Index mr;
  Index nr;
  PackedFn<T> fn;
};

// One candidate set per precision; kept in sync with the MicroRowOf
// specializations in gemm_engine.hpp (MR in {4, 8, 16}, NR <= 8).
template <typename T>
constexpr KernelEntry<T> kKernels[] = {
    {4, 6, &detail::gemm_packed_serial<T, 4, 6>},
    {8, 4, &detail::gemm_packed_serial<T, 8, 4>},
    {8, 6, &detail::gemm_packed_serial<T, 8, 6>},
    {8, 8, &detail::gemm_packed_serial<T, 8, 8>},
    {16, 4, &detail::gemm_packed_serial<T, 16, 4>},
    {16, 6, &detail::gemm_packed_serial<T, 16, 6>},
    {16, 8, &detail::gemm_packed_serial<T, 16, 8>},
};

template <typename T>
PackedFn<T> find_kernel(Index mr, Index nr) {
  for (const KernelEntry<T>& e : kKernels<T>) {
    if (e.mr == mr && e.nr == nr) return e.fn;
  }
  return nullptr;
}

// Resolved per-precision engine configuration: the dispatched micro-kernel
// plus its cache blocks, from the autotune profile (already sanitized by
// autotune::active_profile(), but the kernel lookup re-checks and falls
// back to the default micro tile so a hand-edited profile can't crash us).
template <typename T>
struct ActiveConfig {
  PackedFn<T> fn;
  detail::EngineBlocking blk;
  Index mr;
  Index nr;
};

template <typename T>
ActiveConfig<T> resolve_config(const autotune::Blocking& tuned,
                               const autotune::Blocking& fallback) {
  autotune::Blocking b = autotune::sanitize(tuned, fallback);
  PackedFn<T> fn = find_kernel<T>(b.mr, b.nr);
  if (fn == nullptr) {
    b = autotune::sanitize(fallback, fallback);
    fn = find_kernel<T>(b.mr, b.nr);
  }
  PARSVD_REQUIRE(fn != nullptr, "gemm: no micro-kernel for default blocking");
  return {fn, {b.mc, b.kc, b.nc}, b.mr, b.nr};
}

const ActiveConfig<double>& active_f64() {
  static const ActiveConfig<double> cfg = resolve_config<double>(
      autotune::active_profile().f64, autotune::default_profile().f64);
  return cfg;
}

const ActiveConfig<float>& active_f32() {
  static const ActiveConfig<float> cfg = resolve_config<float>(
      autotune::active_profile().f32, autotune::default_profile().f32);
  return cfg;
}

constexpr Index kGemmPackThreshold = 24 * 24 * 24;

// Shared accumulate driver: tiny products skip packing, large ones fan
// out over disjoint column panels of C (one chunk per pool slot, each
// running the full packed structure on its slice — thread-local packing
// buffers, no synchronization on writes).
template <typename T>
void accumulate_engine(const ActiveConfig<T>& cfg, const detail::OpViewT<T>& va,
                       const detail::OpViewT<T>& vb, Index m, Index n, Index k,
                       T alpha, T* c, Index ldc, bool allow_parallel) {
  const Index flops_proxy = m * n * k;
  if (flops_proxy < kGemmPackThreshold) {
    detail::gemm_small_serial<T>(va, vb, m, n, k, alpha, c, ldc);
    return;
  }

  if (allow_parallel && flops_proxy >= kGemmParallelThreshold &&
      pool_available()) {
    const std::size_t slots = ThreadPool::global().size() + 1;
    const std::size_t grain = static_cast<std::size_t>(detail::engine_round_up(
        (n + static_cast<Index>(slots) - 1) / static_cast<Index>(slots),
        cfg.nr));
    ThreadPool::global().parallel_for(
        0, static_cast<std::size_t>(n),
        [&](std::size_t lo, std::size_t hi) {
          const Index j0 = static_cast<Index>(lo);
          cfg.fn(va, vb.shifted_cols(j0), m, static_cast<Index>(hi) - j0, k,
                 alpha, c + j0 * ldc, ldc, cfg.blk);
        },
        grain);
  } else {
    cfg.fn(va, vb, m, n, k, alpha, c, ldc, cfg.blk);
  }
}

}  // namespace

namespace detail {

void gemm_accumulate(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
                     double alpha, const double* a, Index lda,
                     const double* b, Index ldb, double* c, Index ldc,
                     bool allow_parallel) {
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;
  const OpViewT<double> va = make_op_view(a, lda, trans_a == Trans::Yes);
  const OpViewT<double> vb = make_op_view(b, ldb, trans_b == Trans::Yes);
  accumulate_engine<double>(active_f64(), va, vb, m, n, k, alpha, c, ldc,
                            allow_parallel);
}

void gemm_accumulate_f32(Trans trans_a, Trans trans_b, Index m, Index n,
                         Index k, float alpha, const float* a, Index lda,
                         const float* b, Index ldb, float* c, Index ldc,
                         bool allow_parallel) {
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;
  const OpViewT<float> va = make_op_view(a, lda, trans_a == Trans::Yes);
  const OpViewT<float> vb = make_op_view(b, ldb, trans_b == Trans::Yes);
  accumulate_engine<float>(active_f32(), va, vb, m, n, k, alpha, c, ldc,
                           allow_parallel);
}

bool has_kernel_f64(Index mr, Index nr) {
  return find_kernel<double>(mr, nr) != nullptr;
}

bool has_kernel_f32(Index mr, Index nr) {
  return find_kernel<float>(mr, nr) != nullptr;
}

void gemm_probe_f64(Index m, Index n, Index k, const double* a,
                    const double* b, double* c,
                    const autotune::Blocking& blk) {
  PackedFn<double> fn = find_kernel<double>(blk.mr, blk.nr);
  PARSVD_REQUIRE(fn != nullptr, "gemm_probe_f64: no such micro-kernel");
  fn(make_op_view(a, m, false), make_op_view(b, k, false), m, n, k, 1.0, c, m,
     {blk.mc, blk.kc, blk.nc});
}

void gemm_probe_f32(Index m, Index n, Index k, const float* a, const float* b,
                    float* c, const autotune::Blocking& blk) {
  PackedFn<float> fn = find_kernel<float>(blk.mr, blk.nr);
  PARSVD_REQUIRE(fn != nullptr, "gemm_probe_f32: no such micro-kernel");
  fn(make_op_view(a, m, false), make_op_view(b, k, false), m, n, k, 1.0f, c, m,
     {blk.mc, blk.kc, blk.nc});
}

}  // namespace detail

void gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix& c) {
  const Index m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const Index k = (trans_a == Trans::No) ? a.cols() : a.rows();
  const Index kb = (trans_b == Trans::No) ? b.rows() : b.cols();
  const Index n = (trans_b == Trans::No) ? b.cols() : b.rows();
  PARSVD_REQUIRE(k == kb, "gemm: inner dimension mismatch");
  PARSVD_REQUIRE(c.rows() == m && c.cols() == n, "gemm: C has wrong shape");
  PARSVD_REQUIRE(!c.aliases(a) && !c.aliases(b),
                 "gemm: C must not alias A or B");

  PARSVD_TRACE_SCOPE("linalg.gemm");
  static obs::Counter& calls = obs::Registry::global().counter("linalg.gemm.calls");
  static obs::Counter& flops = obs::Registry::global().counter("linalg.gemm.flops");
  calls.add(1);
  flops.add(2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(k));

  if (beta != 1.0) {
    if (beta == 0.0) {
      c.fill(0.0);
    } else {
      c *= beta;
    }
  }
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  detail::gemm_accumulate(trans_a, trans_b, m, n, k, alpha, a.data(),
                          a.rows(), b.data(), b.rows(), c.data(), c.rows());
}

void gemm_f32(Trans trans_a, Trans trans_b, float alpha, const MatrixF& a,
              const MatrixF& b, float beta, MatrixF& c) {
  const Index m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const Index k = (trans_a == Trans::No) ? a.cols() : a.rows();
  const Index kb = (trans_b == Trans::No) ? b.rows() : b.cols();
  const Index n = (trans_b == Trans::No) ? b.cols() : b.rows();
  PARSVD_REQUIRE(k == kb, "gemm_f32: inner dimension mismatch");
  PARSVD_REQUIRE(c.rows() == m && c.cols() == n, "gemm_f32: C has wrong shape");
  PARSVD_REQUIRE(!c.aliases(a) && !c.aliases(b),
                 "gemm_f32: C must not alias A or B");

  PARSVD_TRACE_SCOPE("linalg.gemm_f32");
  static obs::Counter& calls =
      obs::Registry::global().counter("linalg.gemm_f32.calls");
  static obs::Counter& flops =
      obs::Registry::global().counter("linalg.gemm_f32.flops");
  calls.add(1);
  flops.add(2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(k));

  if (beta != 1.0f) {
    if (beta == 0.0f) {
      c.fill(0.0f);
    } else {
      const Index total = c.size();
      float* cd = c.data();
      for (Index i = 0; i < total; ++i) cd[i] *= beta;
    }
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  detail::gemm_accumulate_f32(trans_a, trans_b, m, n, k, alpha, a.data(),
                              a.rows(), b.data(), b.rows(), c.data(),
                              c.rows());
}

Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a, Trans trans_b) {
  const Index m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const Index n = (trans_b == Trans::No) ? b.cols() : b.rows();
  Matrix c(m, n);
  gemm(trans_a, trans_b, 1.0, a, b, 0.0, c);
  return c;
}

MatrixF matmul_f32(const MatrixF& a, const MatrixF& b, Trans trans_a,
                   Trans trans_b) {
  const Index m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const Index n = (trans_b == Trans::No) ? b.cols() : b.rows();
  MatrixF c(m, n);
  gemm_f32(trans_a, trans_b, 1.0f, a, b, 0.0f, c);
  return c;
}

Matrix gram(const Matrix& a) {
  if (compensated_enabled()) return gram_compensated(a);
  const Index m = a.rows();
  const Index n = a.cols();
  Matrix g(n, n);
  if (n == 0) return g;
  PARSVD_TRACE_SCOPE("linalg.gram");
  static obs::Counter& flops = obs::Registry::global().counter("linalg.gemm.flops");
  flops.add(static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(m));

  // Column-block width for the upper-triangle sweep: block J computes
  // G(0:j1, J) = Aᵀ(:, 0:j1)ᵀ-style panel product through the packed
  // kernel; the strict lower triangle is mirrored afterwards.
  constexpr Index kGramBlock = 48;
  const Index nblocks = (n + kGramBlock - 1) / kGramBlock;
  auto run_blocks = [&](Index b0, Index b1) {
    for (Index blk = b0; blk < b1; ++blk) {
      const Index j0 = blk * kGramBlock;
      const Index j1 = std::min(n, j0 + kGramBlock);
      detail::gemm_accumulate(Trans::Yes, Trans::No, j1, j1 - j0, m, 1.0,
                              a.data(), m, a.col_data(j0), m, g.col_data(j0),
                              n, /*allow_parallel=*/false);
    }
  };

  // The triangle halves the flops: n*n*m/2 against the GEMM threshold.
  if (n * n * m / 2 >= kGemmParallelThreshold && pool_available() && nblocks > 1) {
    ThreadPool::global().parallel_for(
        0, static_cast<std::size_t>(nblocks),
        [&](std::size_t lo, std::size_t hi) {
          run_blocks(static_cast<Index>(lo), static_cast<Index>(hi));
        },
        /*grain=*/1);  // later blocks are taller; unit grain load-balances
  } else {
    run_blocks(0, nblocks);
  }

  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) g(j, i) = g(i, j);
  }
  return g;
}

Matrix gram_compensated(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  Matrix g(n, n);
  if (n == 0) return g;
  PARSVD_TRACE_SCOPE("linalg.gram_compensated");
  static obs::Counter& calls =
      obs::Registry::global().counter("linalg.gram_compensated.calls");
  static obs::Counter& flops =
      obs::Registry::global().counter("linalg.gram_compensated.flops");
  calls.add(1);
  // Upper triangle of Dot2 column dots at ~8 flops/element, mirrored.
  flops.add(8ull * static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(n + 1) / 2 *
            static_cast<std::uint64_t>(m));

  for (Index j = 0; j < n; ++j) {
    const double* cj = a.col_data(j);
    for (Index i = 0; i <= j; ++i) {
      const double v = dot2(a.col_data(i), cj, static_cast<std::size_t>(m));
      g(i, j) = v;
      if (i != j) g(j, i) = v;
    }
  }
  return g;
}

}  // namespace parsvd
