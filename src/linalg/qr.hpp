// QR factorizations.
//
// Householder QR is the workhorse of both the streaming SVD update
// (Algorithm 1, step 1) and the local stage of TSQR.  The factorization is
// *blocked*: panels of PARSVD_QR_BLOCK reflectors are factored with the
// level-2 sweep, accumulated into a compact-WY representation
// Q = I − V T Vᵀ (LAPACK larft convention, T upper triangular), and the
// trailing matrix is updated with two level-3 GEMMs through the packed
// kernel engine — so the factorization, thin_q(), and both apply paths all
// run at GEMM speed.  We keep the factored representation so Qᵀb products
// don't need an explicit Q, and expose a thin-QR convenience with a
// deterministic sign convention: diag(R) >= 0.  The PyParSVD code obtains
// cross-rank consistency by negating NumPy's Q and R ("trick for
// consistency"); fixing the sign inside the factorization achieves the
// same goal deterministically for every backend and rank count.
#pragma once

#include "linalg/matrix.hpp"

namespace parsvd {

/// Thin QR result: for A (m x n), q is m x min(m,n) with orthonormal
/// columns, r is min(m,n) x n upper-triangular(-trapezoidal), A = q r.
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Householder QR in factored form.
///
/// Stores the reflectors in the lower triangle of the working copy plus
/// the tau coefficients (LAPACK geqrf layout). Cost 2mn^2 - 2n^3/3 flops,
/// with the dominant share running as level-3 trailing updates when
/// min(m,n) exceeds the panel width.
class HouseholderQr {
 public:
  /// Factor A (any shape; m >= 1, n >= 1) with the default panel width
  /// (PARSVD_QR_BLOCK, default 32).
  explicit HouseholderQr(const Matrix& a);

  /// Factor with an explicit panel width. `block <= 1` forces the
  /// unblocked column-at-a-time sweep (the reference path tests compare
  /// against); `block == 0` selects the default.
  HouseholderQr(const Matrix& a, Index block);

  Index rows() const { return qr_.rows(); }
  Index cols() const { return qr_.cols(); }
  /// Number of reflectors = min(m, n).
  Index rank_bound() const { return static_cast<Index>(tau_.size()); }
  /// Panel width used for the blocked factor/apply paths.
  Index block() const { return block_; }

  /// R factor, min(m,n) x n, upper triangular/trapezoidal.
  Matrix r() const;

  /// Thin Q, m x min(m,n), orthonormal columns (built via the blocked
  /// apply path).
  Matrix thin_q() const;

  /// In-place B := Qᵀ B (B has m rows).
  void apply_qt(Matrix& b) const;

  /// In-place B := Q B (B has m rows).
  void apply_q(Matrix& b) const;

  /// Minimum-norm least-squares solution of min ||A x - b||_2 for m >= n
  /// with full column rank (no pivoting; throws on exactly-zero pivot).
  Vector solve_least_squares(const Vector& b) const;

 private:
  void factor_unblocked();
  void factor_blocked();
  /// Level-2 panel sweep over columns [j0, j0+jb); reflections are applied
  /// to columns [j0, update_to) only.
  void factor_panel(Index j0, Index jb, Index update_to);
  /// Explicit V for reflectors [j0, j0+jb): (m-j0) x jb, unit lower
  /// trapezoidal (implicit ones materialized, upper part zeroed).
  Matrix panel_v(Index j0, Index jb) const;
  /// Compact-WY T factor (jb x jb upper triangular, LAPACK larft forward
  /// columnwise) for reflectors [j0, j0+jb).
  Matrix build_t(Index j0, Index jb) const;
  /// B := Q B (forward=false) or Qᵀ B (forward=true) for B with qr_.rows()
  /// rows, using the blocked WY representation.
  void apply_blocked(Matrix& b, bool transpose) const;

  Matrix qr_;                 // reflectors below diagonal, R on/above
  std::vector<double> tau_;   // reflector scaling coefficients
  Index block_ = 1;           // panel width used by blocked paths
};

/// Thin QR with the deterministic sign convention diag(R) >= 0.
QrResult qr_thin(const Matrix& a);

/// Thin QR without the sign fix (raw Householder output).
QrResult qr_thin_raw(const Matrix& a);

/// Orthonormalize the columns of `a` in place with modified Gram-Schmidt
/// applied twice (CGS2-quality orthogonality, ~2mn^2 flops). Columns that
/// collapse below `tol * initial_norm` are replaced with zeros and their
/// count is returned (rank deficiency indicator).
Index orthonormalize_mgs2(Matrix& a, double tol = 1e-12);

/// fp32 counterpart used by the Single/Mixed range-finder paths (DESIGN
/// §12): the same two-pass MGS, with the projection dots accumulated in
/// double so the coefficients stay honest over long columns. The default
/// drop tolerance is scaled to fp32 epsilon.
Index orthonormalize_mgs2_f32(MatrixF& a, float tol = 1e-5f);

/// CholeskyQR2 orthonormalization of the columns of `a` in place: two
/// rounds of S = AᵀA (Cholesky S = RᵀR, A ← A R⁻¹), everything level-3
/// through the packed engine, so it runs at GEMM speed where MGS2 is a
/// memory-bound dot/axpy sweep — ~10x at range-finder shapes (4096 x 72).
/// One round needs kappa(A)^2 below the working precision; the second
/// round polishes orthogonality to machine level. On Cholesky breakdown
/// (rank deficiency or extreme conditioning) it falls back to
/// orthonormalize_mgs2 on the untouched input, so the return value is the
/// dropped-column count with the same semantics. Used by the fp32/Mixed
/// range-finder paths (DESIGN §12); the fp64 reference pipeline keeps
/// MGS2 so its results stay bit-identical across releases.
Index orthonormalize_cholqr2(Matrix& a, double tol = 1e-12);

/// fp32 counterpart: Gram and the A R⁻¹ update run through the packed
/// fp32 engine; the small Cholesky/triangular-inverse runs in double.
Index orthonormalize_cholqr2_f32(MatrixF& a, float tol = 1e-5f);

/// || QᵀQ - I ||_max — orthogonality defect used widely in tests.
double orthogonality_error(const Matrix& q);

}  // namespace parsvd
