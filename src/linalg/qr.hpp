// QR factorizations.
//
// Householder QR is the workhorse of both the streaming SVD update
// (Algorithm 1, step 1) and the local stage of TSQR.  We keep the
// factored (compact WY-free) representation so Qᵀb products don't need an
// explicit Q, and expose a thin-QR convenience with a deterministic sign
// convention: diag(R) >= 0.  The PyParSVD code obtains cross-rank
// consistency by negating NumPy's Q and R ("trick for consistency");
// fixing the sign inside the factorization achieves the same goal
// deterministically for every backend and rank count.
#pragma once

#include "linalg/matrix.hpp"

namespace parsvd {

/// Thin QR result: for A (m x n), q is m x min(m,n) with orthonormal
/// columns, r is min(m,n) x n upper-triangular(-trapezoidal), A = q r.
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Householder QR in factored form.
///
/// Stores the reflectors in the lower triangle of the working copy plus
/// the tau coefficients (LAPACK geqrf layout). Cost 2mn^2 - 2n^3/3 flops.
class HouseholderQr {
 public:
  /// Factor A (any shape; m >= 1, n >= 1).
  explicit HouseholderQr(const Matrix& a);

  Index rows() const { return qr_.rows(); }
  Index cols() const { return qr_.cols(); }
  /// Number of reflectors = min(m, n).
  Index rank_bound() const { return static_cast<Index>(tau_.size()); }

  /// R factor, min(m,n) x n, upper triangular/trapezoidal.
  Matrix r() const;

  /// Thin Q, m x min(m,n), orthonormal columns.
  Matrix thin_q() const;

  /// In-place B := Qᵀ B (B has m rows).
  void apply_qt(Matrix& b) const;

  /// In-place B := Q B (B has m rows).
  void apply_q(Matrix& b) const;

  /// Minimum-norm least-squares solution of min ||A x - b||_2 for m >= n
  /// with full column rank (no pivoting; throws on exactly-zero pivot).
  Vector solve_least_squares(const Vector& b) const;

 private:
  Matrix qr_;                 // reflectors below diagonal, R on/above
  std::vector<double> tau_;   // reflector scaling coefficients
};

/// Thin QR with the deterministic sign convention diag(R) >= 0.
QrResult qr_thin(const Matrix& a);

/// Thin QR without the sign fix (raw Householder output).
QrResult qr_thin_raw(const Matrix& a);

/// Orthonormalize the columns of `a` in place with modified Gram-Schmidt
/// applied twice (CGS2-quality orthogonality, ~2mn^2 flops). Columns that
/// collapse below `tol * initial_norm` are replaced with zeros and their
/// count is returned (rank deficiency indicator).
Index orthonormalize_mgs2(Matrix& a, double tol = 1e-12);

/// || QᵀQ - I ||_max — orthogonality defect used widely in tests.
double orthogonality_error(const Matrix& q);

}  // namespace parsvd
