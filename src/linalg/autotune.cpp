#include "linalg/autotune.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace parsvd::autotune {

namespace {

constexpr int kProfileVersion = 1;

Index round_to(Index v, Index to) { return (v + to - 1) / to * to; }

// ------------------------------------------------------- JSON profile IO
//
// The profile format is small and fully under our control (save_profile is
// the only writer), so reading is a targeted scanner rather than a general
// JSON parser: locate a section's brace block, then pull "key": value
// pairs out of it. Any miss rejects the whole profile — a half-parsed
// blocking must never reach the engine.

bool scan_int(const std::string& text, const std::string& key, Index& out) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  std::size_t pos = text.find(':', at + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  std::size_t end = pos;
  if (end < text.size() && (text[end] == '-' || text[end] == '+')) ++end;
  while (end < text.size() && text[end] >= '0' && text[end] <= '9') ++end;
  if (end == pos) return false;
  try {
    out = static_cast<Index>(std::stoll(text.substr(pos, end - pos)));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool scan_bool(const std::string& text, const std::string& key, bool& out) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t pos = text.find(':', at + needle.size());
  if (pos == std::string::npos) return false;
  if (text.compare(pos + 1, 5, " true") == 0) { out = true; return true; }
  if (text.compare(pos + 1, 6, " false") == 0) { out = false; return true; }
  return false;
}

// The brace block following `"name":` (exclusive of the braces).
bool scan_section(const std::string& text, const std::string& name,
                  std::string& out) {
  const std::string needle = "\"" + name + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t open = text.find('{', at + needle.size());
  const std::size_t close = text.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return false;
  out = text.substr(open + 1, close - open - 1);
  return true;
}

bool scan_blocking(const std::string& text, const std::string& name,
                   Blocking& out) {
  std::string section;
  if (!scan_section(text, name, section)) return false;
  Blocking b;
  if (!scan_int(section, "mc", b.mc) || !scan_int(section, "kc", b.kc) ||
      !scan_int(section, "nc", b.nc) || !scan_int(section, "mr", b.mr) ||
      !scan_int(section, "nr", b.nr)) {
    return false;
  }
  out = b;
  return true;
}

// --------------------------------------------------------- sweep helpers

constexpr int kProbeReps = 3;
constexpr int kProbeRepsSmoke = 1;

double time_probe_f64(Index n, const Matrix& a, const Matrix& b, Matrix& c,
                      const Blocking& blk, int reps) {
  detail::gemm_probe_f64(n, n, n, a.data(), b.data(), c.data(), blk);  // warm
  double best = std::numeric_limits<double>::infinity();
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    sw.reset();
    sw.start();
    detail::gemm_probe_f64(n, n, n, a.data(), b.data(), c.data(), blk);
    best = std::min(best, sw.stop());
  }
  return best;
}

double time_probe_f32(Index n, const MatrixF& a, const MatrixF& b, MatrixF& c,
                      const Blocking& blk, int reps) {
  detail::gemm_probe_f32(n, n, n, a.data(), b.data(), c.data(), blk);  // warm
  double best = std::numeric_limits<double>::infinity();
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    sw.reset();
    sw.start();
    detail::gemm_probe_f32(n, n, n, a.data(), b.data(), c.data(), blk);
    best = std::min(best, sw.stop());
  }
  return best;
}

double time_qr(const Matrix& a, Index block, int reps) {
  { HouseholderQr warm(a, block); }  // warm (allocations, icache)
  double best = std::numeric_limits<double>::infinity();
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    sw.reset();
    sw.start();
    HouseholderQr qr(a, block);
    best = std::min(best, sw.stop());
  }
  return best;
}

struct GridSpec {
  std::vector<Index> mc;
  std::vector<Index> kc;
  std::vector<Index> nc;
  std::vector<std::pair<Index, Index>> micro;  // (mr, nr) candidates
};

GridSpec grid_spec(bool smoke) {
  if (smoke) {
    return {{64, 96}, {128, 256}, {4032}, {{8, 6}, {16, 6}}};
  }
  return {{64, 96, 128, 192},
          {128, 192, 256, 384},
          {4032},
          {{4, 6}, {8, 4}, {8, 6}, {8, 8}, {16, 4}, {16, 6}, {16, 8}}};
}

template <typename TimeFn>
SweepEntry sweep_precision(const GridSpec& grid, const Blocking& fallback,
                           TimeFn&& time_at) {
  SweepEntry entry;
  entry.best = sanitize(fallback, fallback);
  entry.default_seconds = time_at(entry.best);
  entry.best_seconds = entry.default_seconds;
  for (const auto& [mr, nr] : grid.micro) {
    for (Index mc : grid.mc) {
      for (Index kc : grid.kc) {
        for (Index nc : grid.nc) {
          const Blocking cand = sanitize({mc, kc, nc, mr, nr}, fallback);
          ++entry.candidates;
          const double secs = time_at(cand);
          if (secs < entry.best_seconds) {
            entry.best_seconds = secs;
            entry.best = cand;
          }
        }
      }
    }
  }
  return entry;
}

}  // namespace

Profile default_profile() {
  Profile p;
  p.version = kProfileVersion;
  p.f64 = {96, 256, 4032, 8, 6};
  // fp32 elements are half the bytes: doubling KC keeps the packed panel
  // footprint equal to the fp64 path, and MR=16 fills the same vector
  // width (16 floats = 8 doubles per SIMD row).
  p.f32 = {96, 512, 4032, 16, 6};
  p.qr_block = 32;
  p.tuned = false;
  return p;
}

Blocking sanitize(const Blocking& requested, const Blocking& fallback) {
  Blocking b = requested;
  // Both precisions instantiate the same (mr, nr) candidate set, so the
  // fp64 table answers feasibility for either.
  if (!detail::has_kernel_f64(b.mr, b.nr)) {
    b.mr = fallback.mr;
    b.nr = fallback.nr;
  }
  b.mc = round_to(std::clamp<Index>(b.mc, b.mr, 4096), b.mr);
  b.kc = std::clamp<Index>(b.kc, 8, 8192);
  b.nc = round_to(std::clamp<Index>(b.nc, b.nr, 1 << 16), b.nr);
  return b;
}

bool load_profile(const std::string& path, Profile& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  Index version = 0;
  if (!scan_int(text, "schema_version", version) || version != kProfileVersion) {
    return false;
  }
  Profile p;
  p.version = static_cast<int>(version);
  if (!scan_blocking(text, "f64", p.f64) ||
      !scan_blocking(text, "f32", p.f32) ||
      !scan_int(text, "qr_block", p.qr_block)) {
    return false;
  }
  if (!scan_bool(text, "tuned", p.tuned)) p.tuned = false;
  out = p;
  return true;
}

void save_profile(const Profile& profile, const std::string& path) {
  std::ofstream out(path);
  PARSVD_REQUIRE(static_cast<bool>(out),
                 "autotune: cannot write profile to " + path);
  auto blocking_json = [](const Blocking& b) {
    std::ostringstream s;
    s << "{\"mc\": " << b.mc << ", \"kc\": " << b.kc << ", \"nc\": " << b.nc
      << ", \"mr\": " << b.mr << ", \"nr\": " << b.nr << "}";
    return s.str();
  };
  out << "{\n"
      << "  \"schema_version\": " << profile.version << ",\n"
      << "  \"tuned\": " << (profile.tuned ? "true" : "false") << ",\n"
      << "  \"f64\": " << blocking_json(profile.f64) << ",\n"
      << "  \"f32\": " << blocking_json(profile.f32) << ",\n"
      << "  \"qr_block\": " << profile.qr_block << "\n"
      << "}\n";
  PARSVD_REQUIRE(static_cast<bool>(out),
                 "autotune: failed writing profile to " + path);
}

const Profile& active_profile() {
  static const Profile resolved = [] {
    Profile p = default_profile();
    const std::string path = env::get_string("PARSVD_TUNE_PROFILE", "");
    if (!path.empty()) {
      Profile loaded;
      if (load_profile(path, loaded)) {
        p = loaded;
      } else {
        log::warn("autotune: ignoring unreadable/mismatched profile '", path,
                  "'");
      }
    }
    // Env overrides sit on top of whichever base won, applied to both
    // precisions (they are one-off experiment knobs, not the profile).
    p.f64.mc = env::get_int("PARSVD_GEMM_MC", p.f64.mc);
    p.f64.kc = env::get_int("PARSVD_GEMM_KC", p.f64.kc);
    p.f64.nc = env::get_int("PARSVD_GEMM_NC", p.f64.nc);
    p.f32.mc = env::get_int("PARSVD_GEMM_MC", p.f32.mc);
    p.f32.kc = env::get_int("PARSVD_GEMM_KC", p.f32.kc);
    p.f32.nc = env::get_int("PARSVD_GEMM_NC", p.f32.nc);
    p.qr_block =
        std::clamp<Index>(env::get_int("PARSVD_QR_BLOCK", p.qr_block), 1, 1024);
    const Profile defaults = default_profile();
    p.f64 = sanitize(p.f64, defaults.f64);
    p.f32 = sanitize(p.f32, defaults.f32);
    return p;
  }();
  return resolved;
}

SweepResult sweep(bool smoke) {
  const GridSpec grid = grid_spec(smoke);
  const int reps = smoke ? kProbeRepsSmoke : kProbeReps;
  const Profile defaults = default_profile();

  SweepResult result;
  result.probe_size = smoke ? 96 : 384;

  // Deterministic operands: the sweep must pick the same winner for the
  // same machine state regardless of when it runs.
  Rng rng(0x7a9e5u);
  const Index n = result.probe_size;
  const Matrix a64 = Matrix::gaussian(n, n, rng);
  const Matrix b64 = Matrix::gaussian(n, n, rng);
  Matrix c64(n, n);
  const MatrixF a32 = to_single(a64);
  const MatrixF b32 = to_single(b64);
  MatrixF c32(n, n);

  result.f64 = sweep_precision(grid, defaults.f64, [&](const Blocking& blk) {
    return time_probe_f64(n, a64, b64, c64, blk, reps);
  });
  result.f32 = sweep_precision(grid, defaults.f32, [&](const Blocking& blk) {
    return time_probe_f32(n, a32, b32, c32, blk, reps);
  });

  // QR panel width over the same candidate spirit: a tall-skinny probe
  // shaped like the streaming update's QR.
  result.qr_rows = smoke ? 192 : 768;
  result.qr_cols = smoke ? 64 : 256;
  const Matrix qa = Matrix::gaussian(result.qr_rows, result.qr_cols, rng);
  const std::vector<Index> qr_blocks =
      smoke ? std::vector<Index>{16, 32} : std::vector<Index>{16, 24, 32, 48, 64};
  result.qr_default_seconds = time_qr(qa, defaults.qr_block, reps);
  Index best_block = defaults.qr_block;
  result.qr_best_seconds = result.qr_default_seconds;
  for (Index block : qr_blocks) {
    const double secs = time_qr(qa, block, reps);
    if (secs < result.qr_best_seconds) {
      result.qr_best_seconds = secs;
      best_block = block;
    }
  }

  result.profile.version = kProfileVersion;
  result.profile.f64 = result.f64.best;
  result.profile.f32 = result.f32.best;
  result.profile.qr_block = best_block;
  result.profile.tuned = true;
  return result;
}

}  // namespace parsvd::autotune
