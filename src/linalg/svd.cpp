#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/blas.hpp"
#include "linalg/eigh.hpp"
#include "linalg/qr.hpp"

namespace parsvd {

Matrix SvdResult::reconstruct() const {
  Matrix us = u;
  for (Index j = 0; j < us.cols(); ++j) {
    scal(s[j], us.col_span(j));
  }
  return matmul(us, v, Trans::No, Trans::Yes);
}

namespace {

/// Truncate an SVD result to the leading `rank` triplets (0 = keep all).
void truncate(SvdResult& r, Index rank) {
  if (rank <= 0 || rank >= r.s.size()) return;
  r.u = r.u.left_cols(rank);
  r.v = r.v.left_cols(rank);
  r.s = r.s.head(rank);
}

/// Sort an SVD result by descending singular value (stable).
void sort_descending(SvdResult& r) {
  const Index k = r.s.size();
  std::vector<Index> order(static_cast<std::size_t>(k));
  std::iota(order.begin(), order.end(), Index{0});
  std::stable_sort(order.begin(), order.end(),
                   [&r](Index a, Index b) { return r.s[a] > r.s[b]; });
  bool sorted = true;
  for (Index i = 0; i < k; ++i) {
    if (order[static_cast<std::size_t>(i)] != i) { sorted = false; break; }
  }
  if (sorted) return;
  Matrix u(r.u.rows(), k), v(r.v.rows(), k);
  Vector s(k);
  for (Index i = 0; i < k; ++i) {
    const Index src = order[static_cast<std::size_t>(i)];
    u.set_col(i, r.u.col(src));
    v.set_col(i, r.v.col(src));
    s[i] = r.s[src];
  }
  r.u = std::move(u);
  r.v = std::move(v);
  r.s = std::move(s);
}

/// Core one-sided Jacobi on a square-ish working matrix W (m x n, m >= n).
/// On return W's columns are U scaled by the singular values and V holds
/// the accumulated right rotations.
SvdResult one_sided_jacobi(Matrix w, double tol, int max_sweeps) {
  const Index n = w.cols();
  Matrix v = Matrix::identity(n);

  // Normalize the working scale to ~1: at extreme magnitudes (|A| near
  // 1e±150) the squared-norm products the rotations use underflow or
  // overflow and the sweeps never converge. Singular values are scaled
  // back at the end.
  const double input_fro = w.norm_fro();
  const double scale_back = (input_fro > 0.0) ? input_fro : 1.0;
  if (input_fro > 0.0) w *= 1.0 / input_fro;

  // Columns whose squared norm falls below this are numerically zero:
  // rotating them against each other only chases round-off and keeps the
  // sweep loop from ever converging on rank-deficient inputs.
  const double fro = (input_fro > 0.0) ? 1.0 : 0.0;
  const double tiny2 = (1e-15 * fro) * (1e-15 * fro);

  // Sweep over all column pairs until every pair is numerically
  // orthogonal: |aᵢᵀaⱼ| <= tol * ||aᵢ|| ||aⱼ||.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        auto colp = w.col_span(p);
        auto colq = w.col_span(q);
        const double app = dot(colp, colp);
        const double aqq = dot(colq, colq);
        const double apq = dot(colp, colq);
        if (app <= tiny2 || aqq <= tiny2) continue;
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq)) continue;
        rotated = true;

        // Two-sided rotation angle for the 2x2 Gram block.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (std::size_t i = 0; i < colp.size(); ++i) {
          const double xp = colp[i], xq = colq[i];
          colp[i] = c * xp - s * xq;
          colq[i] = s * xp + c * xq;
        }
        double* vp = v.col_data(p);
        double* vq = v.col_data(q);
        for (Index i = 0; i < n; ++i) {
          const double xp = vp[i], xq = vq[i];
          vp[i] = c * xp - s * xq;
          vq[i] = s * xp + c * xq;
        }
      }
    }
    if (!rotated) break;
    if (sweep + 1 == max_sweeps) {
      throw ConvergenceError("one-sided Jacobi SVD exceeded sweep budget");
    }
  }

  SvdResult out;
  out.s = Vector(n);
  out.u = Matrix(w.rows(), n);
  out.v = std::move(v);
  const double tiny = 1e-15 * fro;
  for (Index j = 0; j < n; ++j) {
    const double norm = nrm2(w.col_span(j));
    out.s[j] = norm * scale_back;
    if (norm > tiny) {
      auto src = w.col_span(j);
      double* dst = out.u.col_data(j);
      for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i] / norm;
    }
    // Negligible column: the sweep guard above never rotated it, so its
    // direction is round-off junk — report σ but leave the U column
    // zero (same contract as the method-of-snapshots backend).
  }
  sort_descending(out);
  return out;
}

}  // namespace

SvdResult svd_jacobi(const Matrix& a, const SvdOptions& opts) {
  PARSVD_REQUIRE(!a.empty(), "svd of an empty matrix");
  const Index m = a.rows();
  const Index n = a.cols();

  SvdResult out;
  if (m >= n) {
    // QR preconditioning: Jacobi on the small n x n factor R, then lift
    // U back through Q. Cuts the rotation cost from O(m n^2 sweeps) to
    // O(n^3 sweeps) for tall matrices.
    if (m > 2 * n) {
      QrResult qr = qr_thin_raw(a);
      out = one_sided_jacobi(std::move(qr.r), opts.tol, opts.max_sweeps);
      out.u = matmul(qr.q, out.u);
    } else {
      out = one_sided_jacobi(a, opts.tol, opts.max_sweeps);
    }
  } else {
    // Wide matrix: factor the transpose and swap factors.
    SvdOptions o = opts;
    o.rank = 0;
    out = svd_jacobi(a.transposed(), o);
    std::swap(out.u, out.v);
  }
  truncate(out, opts.rank);
  return out;
}

SvdResult svd_method_of_snapshots(const Matrix& a, const SvdOptions& opts) {
  PARSVD_REQUIRE(!a.empty(), "svd of an empty matrix");
  const Index n = a.cols();

  // Gram matrix AᵀA = V Σ² Vᵀ; eigh gives descending eigenvalues.
  const Matrix g = gram(a);
  EighOptions eopts;
  eopts.method = opts.eigh_method;
  EighResult eig = eigh(g, eopts);

  SvdResult out;
  out.s = Vector(n);
  out.v = std::move(eig.vectors);
  // Eigenvalues of a Gram matrix are >= 0 in exact arithmetic; clamp
  // round-off negatives.
  for (Index j = 0; j < n; ++j) {
    out.s[j] = std::sqrt(std::max(eig.values[j], 0.0));
  }

  // U = A V Σ⁻¹, computed only for numerically nonzero singular values.
  const double cutoff = (n > 0 ? out.s[0] : 0.0) * 1e-14;
  out.u = matmul(a, out.v);
  for (Index j = 0; j < n; ++j) {
    if (out.s[j] > cutoff && out.s[j] > 0.0) {
      scal(1.0 / out.s[j], out.u.col_span(j));
    } else {
      auto col = out.u.col_span(j);
      std::fill(col.begin(), col.end(), 0.0);
      out.s[j] = (out.s[j] > 0.0) ? out.s[j] : 0.0;
    }
  }
  truncate(out, opts.rank);
  return out;
}

SvdResult svd(const Matrix& a, const SvdOptions& opts) {
  switch (opts.method) {
    case SvdMethod::Jacobi:
      return svd_jacobi(a, opts);
    case SvdMethod::MethodOfSnapshots:
      return svd_method_of_snapshots(a, opts);
    case SvdMethod::GolubKahan:
      return svd_golub_kahan(a, opts);
  }
  throw ConfigError("unknown SVD method");
}

Vector singular_values(const Matrix& a) {
  return svd_jacobi(a, {}).s;
}

Matrix pinv(const Matrix& a, double rcond) {
  SvdResult f = svd_jacobi(a, {});
  const double cutoff = (f.s.size() > 0 ? f.s[0] : 0.0) * rcond;
  // A⁺ = V Σ⁺ Uᵀ.
  Matrix vs = f.v;
  for (Index j = 0; j < vs.cols(); ++j) {
    const double sj = f.s[j];
    const double inv = (sj > cutoff && sj > 0.0) ? 1.0 / sj : 0.0;
    scal(inv, vs.col_span(j));
  }
  return matmul(vs, f.u, Trans::No, Trans::Yes);
}

void fix_svd_signs(Matrix& u, Matrix& v) {
  PARSVD_REQUIRE(u.cols() == v.cols(), "fix_svd_signs: column count mismatch");
  for (Index j = 0; j < u.cols(); ++j) {
    double best = 0.0;
    Index best_i = 0;
    const double* uc = u.col_data(j);
    for (Index i = 0; i < u.rows(); ++i) {
      if (std::fabs(uc[i]) > best) {
        best = std::fabs(uc[i]);
        best_i = i;
      }
    }
    if (uc[best_i] < 0.0) {
      scal(-1.0, u.col_span(j));
      scal(-1.0, v.col_span(j));
    }
  }
}

void fix_mode_signs(Matrix& u) {
  for (Index j = 0; j < u.cols(); ++j) {
    double best = 0.0;
    Index best_i = 0;
    const double* uc = u.col_data(j);
    for (Index i = 0; i < u.rows(); ++i) {
      if (std::fabs(uc[i]) > best) {
        best = std::fabs(uc[i]);
        best_i = i;
      }
    }
    if (uc[best_i] < 0.0) scal(-1.0, u.col_span(j));
  }
}

}  // namespace parsvd
