// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Needed by the method-of-snapshots SVD backend (eigendecomposition of the
// Gram matrix AᵀA), which is the classical POD path the APMOS paper builds
// on.  Jacobi is quadratically convergent once the off-diagonal mass is
// small and computes small eigenvalues to high relative accuracy, which
// matters because singular values are their square roots.
#pragma once

#include "linalg/matrix.hpp"

namespace parsvd {

/// Result of eigh(): a = vectors * diag(values) * vectorsᵀ with
/// eigenvalues sorted in DESCENDING order and orthonormal eigenvectors.
struct EighResult {
  Vector values;
  Matrix vectors;
};

enum class EighMethod {
  /// Cyclic Jacobi rotations. Quadratically convergent, best relative
  /// accuracy for small eigenvalues; O(n³) per sweep.
  Jacobi,
  /// Householder tridiagonalization + implicit-shift QL iteration
  /// (EISPACK tred2/tql2 lineage). One-pass O(n³); the faster choice for
  /// n ≳ 100, used as a cross-validation backend in tests.
  Tridiagonal,
};

struct EighOptions {
  EighMethod method = EighMethod::Jacobi;
  double tol = 1e-14;     ///< off(A) / ||A||_F convergence threshold (Jacobi)
  int max_sweeps = 64;    ///< hard sweep budget before ConvergenceError
};

/// Eigendecomposition of a symmetric matrix (symmetry is validated up to
/// a tolerance, then the strictly-lower triangle is mirrored).
EighResult eigh(const Matrix& a, const EighOptions& opts = {});

/// Direct entry point for the tridiagonalization + QL backend.
EighResult eigh_tridiagonal(const Matrix& a, const EighOptions& opts = {});

}  // namespace parsvd
