#include "linalg/eigh.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace parsvd {
namespace {

/// Sum of squares of the strictly-upper off-diagonal entries.
double off_diagonal_norm(const Matrix& a) {
  double s = 0.0;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < j; ++i) s += a(i, j) * a(i, j);
  }
  return std::sqrt(2.0 * s);
}

}  // namespace

EighResult eigh(const Matrix& input, const EighOptions& opts) {
  if (opts.method == EighMethod::Tridiagonal) {
    return eigh_tridiagonal(input, opts);
  }
  PARSVD_REQUIRE(input.rows() == input.cols(), "eigh requires a square matrix");
  const Index n = input.rows();
  if (n == 0) return {Vector{}, Matrix{}};

  // Validate symmetry, then work on the symmetrized copy so tiny
  // round-off asymmetries from the Gram computation can't bias rotations.
  const double scale = std::max(input.norm_max(), 1.0);
  Matrix a(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) {
      PARSVD_REQUIRE(std::fabs(input(i, j) - input(j, i)) <= 1e-8 * scale,
                     "eigh input is not symmetric");
      const double v = 0.5 * (input(i, j) + input(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
  }

  Matrix v = Matrix::identity(n);
  const double fro = std::max(a.norm_fro(), 1e-300);

  int sweep = 0;
  while (off_diagonal_norm(a) > opts.tol * fro) {
    if (++sweep > opts.max_sweeps) {
      throw ConvergenceError("Jacobi eigensolver exceeded sweep budget");
    }
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        // Classical Jacobi rotation (Golub & Van Loan §8.5.2): choose
        // c, s zeroing a(p,q) with the smaller rotation angle.
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // A := Jᵀ A J restricted to rows/cols p, q.
        const double app = a(p, p), aqq = a(q, q);
        a(p, p) = app - t * apq;
        a(q, q) = aqq + t * apq;
        a(p, q) = 0.0;
        a(q, p) = 0.0;
        for (Index k = 0; k < n; ++k) {
          if (k == p || k == q) continue;
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(p, k) = a(k, p);
          a(k, q) = s * akp + c * akq;
          a(q, k) = a(k, q);
        }
        // Accumulate eigenvectors: V := V J.
        double* vp = v.col_data(p);
        double* vq = v.col_data(q);
        for (Index k = 0; k < n; ++k) {
          const double xp = vp[k], xq = vq[k];
          vp[k] = c * xp - s * xq;
          vq[k] = s * xp + c * xq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::stable_sort(order.begin(), order.end(),
                   [&a](Index i, Index j) { return a(i, i) > a(j, j); });

  EighResult out;
  out.values = Vector(n);
  out.vectors = Matrix(n, n);
  for (Index k = 0; k < n; ++k) {
    const Index src = order[static_cast<std::size_t>(k)];
    out.values[k] = a(src, src);
    out.vectors.set_col(k, v.col(src));
  }
  return out;
}

}  // namespace parsvd
