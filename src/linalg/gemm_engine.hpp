// Precision-templated packed GEMM engine.
//
// The BLIS-style structure that used to live (double-only) inside
// blas.cpp, lifted into templates so the fp32 fast path and the fp64
// reference path share one packing/blocking machinery: op(A) macro-panels
// (MC x KC) and op(B) macro-panels (KC x NC) are packed into contiguous,
// transpose-resolved, zero-padded buffers, and an MR x NR register-tiled
// micro-kernel accumulates C tiles over the full KC depth before touching
// memory.
//
// The micro tile (MR, NR) is a compile-time template parameter so the
// accumulators live in registers; the cache blocks (MC, KC, NC) are
// runtime values supplied by the autotune profile (src/linalg/autotune.*).
// blas.cpp instantiates a small candidate set of (T, MR, NR) kernels and
// dispatches through a table keyed on the active profile, which is how
// the autotuner gets to sweep the micro shape without recompiling.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace parsvd::detail {

/// Element (r, c) of op(M) lives at data[r * stride_row + c * stride_col].
template <typename T>
struct OpViewT {
  const T* data;
  Index stride_row;
  Index stride_col;

  T at(Index r, Index c) const { return data[r * stride_row + c * stride_col]; }
  OpViewT shifted_cols(Index c0) const {
    return {data + c0 * stride_col, stride_row, stride_col};
  }
};

template <typename T>
OpViewT<T> make_op_view(const T* data, Index ld, bool transposed) {
  if (!transposed) return {data, 1, ld};
  return {data, ld, 1};
}

inline Index engine_round_up(Index v, Index to) { return (v + to - 1) / to * to; }

/// Runtime cache-blocking parameters (one per precision, autotuned).
struct EngineBlocking {
  Index mc;
  Index kc;
  Index nc;
};

// Pack op(A)(i0:i0+mc, p0:p0+kc) into MR-wide micro-panels with alpha
// folded in; short edge panels are zero-padded so the micro-kernel never
// needs a bounds check on its accumulate loop.
template <typename T, int MR>
void pack_a_panel(const OpViewT<T>& a, Index i0, Index mc, Index p0, Index kc,
                  T alpha, T* buf) {
  for (Index i = 0; i < mc; i += MR) {
    const Index mr = std::min<Index>(MR, mc - i);
    if (a.stride_row == 1 && mr == MR && alpha == T(1)) {
      // op(A) columns are contiguous: straight MR-element copies.
      const T* src = a.data + (i0 + i) + p0 * a.stride_col;
      for (Index p = 0; p < kc; ++p) {
        T* dst = buf + p * MR;
        const T* col = src + p * a.stride_col;
        for (Index r = 0; r < MR; ++r) dst[r] = col[r];
      }
    } else {
      for (Index p = 0; p < kc; ++p) {
        T* dst = buf + p * MR;
        for (Index r = 0; r < mr; ++r) dst[r] = alpha * a.at(i0 + i + r, p0 + p);
        for (Index r = mr; r < MR; ++r) dst[r] = T(0);
      }
    }
    buf += kc * MR;
  }
}

// Pack op(B)(p0:p0+kc, j0:j0+nc) into NR-wide micro-panels (zero-padded
// on the column edge).
template <typename T, int NR>
void pack_b_panel(const OpViewT<T>& b, Index p0, Index kc, Index j0, Index nc,
                  T* buf) {
  for (Index j = 0; j < nc; j += NR) {
    const Index nr = std::min<Index>(NR, nc - j);
    for (Index p = 0; p < kc; ++p) {
      T* dst = buf + p * NR;
      for (Index c = 0; c < nr; ++c) dst[c] = b.at(p0 + p, j0 + j + c);
      for (Index c = nr; c < NR; ++c) dst[c] = T(0);
    }
    buf += kc * NR;
  }
}

// C(mr x nr tile at `c`, leading dim ldc) += A-panel * B-panel over depth
// kc. The accumulate loop always runs the full tile (padding makes the
// extra lanes harmless); only the store is edge-bounded.
#if defined(__GNUC__) || defined(__clang__)
#define PARSVD_GEMM_VECTOR_EXT 1

// One packed-A micro-row as a GCC/Clang generic vector. The byte width is
// a template-independent literal per specialization because gcc rejects
// dependent expressions in vector_size; alignment matches the scalar so
// loads stay unaligned-safe. The compiler lowers each row to the widest
// SIMD the target arch offers.
template <typename T, int MR>
struct MicroRowOf;  // only the specialized (T, MR) pairs have kernels

typedef double VecD4 __attribute__((vector_size(32), aligned(8)));
typedef double VecD8 __attribute__((vector_size(64), aligned(8)));
typedef double VecD16 __attribute__((vector_size(128), aligned(8)));
typedef float VecF4 __attribute__((vector_size(16), aligned(4)));
typedef float VecF8 __attribute__((vector_size(32), aligned(4)));
typedef float VecF16 __attribute__((vector_size(64), aligned(4)));

template <> struct MicroRowOf<double, 4> { using type = VecD4; };
template <> struct MicroRowOf<double, 8> { using type = VecD8; };
template <> struct MicroRowOf<double, 16> { using type = VecD16; };
template <> struct MicroRowOf<float, 4> { using type = VecF4; };
template <> struct MicroRowOf<float, 8> { using type = VecF8; };
template <> struct MicroRowOf<float, 16> { using type = VecF16; };

// Accumulators are eight explicitly named locals (NR <= 8) rather than an
// array: gcc 12 will not promote an indexed accumulator array out of
// memory, and the register-resident formulation is worth ~15x over the
// portable loop below. `if constexpr` dead-strips the unused tail.
template <typename T, int MR, int NR>
void micro_kernel(Index kc, const T* a_panel, const T* b_panel, T* c,
                  Index ldc, Index mr, Index nr) {
  static_assert(NR >= 1 && NR <= 8, "micro kernel is hand-unrolled to 8");
  using MicroRow = typename MicroRowOf<T, MR>::type;
  MicroRow acc0 = {}, acc1 = {}, acc2 = {}, acc3 = {};
  MicroRow acc4 = {}, acc5 = {}, acc6 = {}, acc7 = {};
  for (Index p = 0; p < kc; ++p) {
    const MicroRow a = *reinterpret_cast<const MicroRow*>(a_panel + p * MR);
    const T* b = b_panel + p * NR;
    acc0 += a * b[0];
    if constexpr (NR > 1) acc1 += a * b[1];
    if constexpr (NR > 2) acc2 += a * b[2];
    if constexpr (NR > 3) acc3 += a * b[3];
    if constexpr (NR > 4) acc4 += a * b[4];
    if constexpr (NR > 5) acc5 += a * b[5];
    if constexpr (NR > 6) acc6 += a * b[6];
    if constexpr (NR > 7) acc7 += a * b[7];
  }
  const MicroRow acc[8] = {acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7};
  if (mr == MR && nr == NR) {
    for (Index j = 0; j < NR; ++j) {
      T* cj = c + j * ldc;
      for (Index i = 0; i < MR; ++i) cj[i] += acc[j][i];
    }
  } else {
    for (Index j = 0; j < nr; ++j) {
      T* cj = c + j * ldc;
      for (Index i = 0; i < mr; ++i) cj[i] += acc[j][i];
    }
  }
}
#else
template <typename T, int MR, int NR>
void micro_kernel(Index kc, const T* a_panel, const T* b_panel, T* c,
                  Index ldc, Index mr, Index nr) {
  T acc[NR][MR] = {};
  for (Index p = 0; p < kc; ++p) {
    const T* a = a_panel + p * MR;
    const T* b = b_panel + p * NR;
    for (Index j = 0; j < NR; ++j) {
      const T bj = b[j];
      for (Index i = 0; i < MR; ++i) acc[j][i] += a[i] * bj;
    }
  }
  if (mr == MR && nr == NR) {
    for (Index j = 0; j < NR; ++j) {
      T* cj = c + j * ldc;
      for (Index i = 0; i < MR; ++i) cj[i] += acc[j][i];
    }
  } else {
    for (Index j = 0; j < nr; ++j) {
      T* cj = c + j * ldc;
      for (Index i = 0; i < mr; ++i) cj[i] += acc[j][i];
    }
  }
}
#endif  // PARSVD_GEMM_VECTOR_EXT

// Serial packed driver over one contiguous column range of C:
// C(m x n, ldc) += alpha * va(m x k) * vb(k x n).
template <typename T, int MR, int NR>
void gemm_packed_serial(const OpViewT<T>& va, const OpViewT<T>& vb, Index m,
                        Index n, Index k, T alpha, T* c, Index ldc,
                        const EngineBlocking& blk) {
  const Index mc_max = std::min(engine_round_up(m, MR), blk.mc);
  const Index nc_max = std::min(engine_round_up(n, NR), blk.nc);
  const Index kc_max = std::min(k, blk.kc);
  std::vector<T> apack(static_cast<std::size_t>(mc_max * kc_max));
  std::vector<T> bpack(static_cast<std::size_t>(nc_max * kc_max));

  for (Index jc = 0; jc < n; jc += blk.nc) {
    const Index nc = std::min(blk.nc, n - jc);
    for (Index pc = 0; pc < k; pc += blk.kc) {
      const Index kc = std::min(blk.kc, k - pc);
      pack_b_panel<T, NR>(vb, pc, kc, jc, nc, bpack.data());
      for (Index ic = 0; ic < m; ic += blk.mc) {
        const Index mc = std::min(blk.mc, m - ic);
        pack_a_panel<T, MR>(va, ic, mc, pc, kc, alpha, apack.data());
        for (Index jr = 0; jr < nc; jr += NR) {
          const Index nr = std::min<Index>(NR, nc - jr);
          const T* bp = bpack.data() + (jr / NR) * kc * NR;
          for (Index ir = 0; ir < mc; ir += MR) {
            const Index mr = std::min<Index>(MR, mc - ir);
            const T* ap = apack.data() + (ir / MR) * kc * MR;
            micro_kernel<T, MR, NR>(kc, ap, bp,
                                    c + (ic + ir) + (jc + jr) * ldc, ldc, mr,
                                    nr);
          }
        }
      }
    }
  }
}

// Unpacked fallback for tiny products where packing/allocation overhead
// would dominate (streaming updates issue many single-digit-size GEMMs).
template <typename T>
void gemm_small_serial(const OpViewT<T>& va, const OpViewT<T>& vb, Index m,
                       Index n, Index k, T alpha, T* c, Index ldc) {
  for (Index j = 0; j < n; ++j) {
    T* cj = c + j * ldc;
    for (Index p = 0; p < k; ++p) {
      const T bpj = alpha * vb.at(p, j);
      if (bpj == T(0)) continue;
      const T* arow = va.data + p * va.stride_col;
      if (va.stride_row == 1) {
        for (Index i = 0; i < m; ++i) cj[i] += bpj * arow[i];
      } else {
        for (Index i = 0; i < m; ++i) cj[i] += bpj * arow[i * va.stride_row];
      }
    }
  }
}

}  // namespace parsvd::detail
