// Dense column-major matrix and vector containers.
//
// This is the storage layer every factorization in linalg/ builds on.
// Conventions:
//   * column-major storage (like LAPACK) so matrix columns are contiguous —
//     the SVD library is dominated by tall-skinny matrices whose columns
//     are snapshots, and column access is the hot path;
//   * double precision is the library's currency (the paper's workloads
//     are real-valued); MatrixF below is the deliberately minimal float
//     buffer the fp32 kernel fast path converts into at the precision
//     boundary (linalg/blas.hpp, DESIGN §12) — it never leaks into the
//     user-facing factorization results;
//   * element access is assert-checked in debug builds and unchecked in
//     release; all shape-changing entry points validate with exceptions.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace parsvd {

class Rng;

/// Index type used across linalg (signed arithmetic avoids size_t wrap bugs
/// in blocked loops, matching the C++ Core Guidelines' advice ES.107).
using Index = std::ptrdiff_t;

/// Dense vector of doubles with a small math-helper surface.
class Vector {
 public:
  Vector() = default;
  explicit Vector(Index n, double value = 0.0);
  Vector(std::initializer_list<double> values);

  static Vector zeros(Index n) { return Vector(n, 0.0); }
  static Vector ones(Index n) { return Vector(n, 1.0); }

  Index size() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }

  double& operator[](Index i) {
    assert(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }
  double operator[](Index i) const {
    assert(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<double> span() { return {data_.data(), data_.size()}; }
  std::span<const double> span() const { return {data_.data(), data_.size()}; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void resize(Index n, double value = 0.0);
  void fill(double value);

  /// First `n` entries as a copy.
  Vector head(Index n) const;

  /// Entries [lo, lo+n) as a copy.
  Vector segment(Index lo, Index n) const;

  double norm2() const;        ///< Euclidean norm.
  double norm_inf() const;     ///< max |x_i|
  double sum() const;

  Vector& operator*=(double s);
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);

 private:
  std::vector<double> data_;
};

/// Dense column-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols, double value = 0.0);

  /// Row-major nested initializer (convenient in tests):
  /// Matrix m{{1,2},{3,4}} is [[1,2],[3,4]].
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix zeros(Index rows, Index cols) { return Matrix(rows, cols); }
  static Matrix identity(Index n);
  /// Diagonal matrix from a vector (square, n x n).
  static Matrix diag(const Vector& d);
  /// i.i.d. N(0,1) entries drawn from `rng`.
  static Matrix gaussian(Index rows, Index cols, Rng& rng);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(Index i, Index j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }
  double operator()(Index i, Index j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// True when this matrix shares storage with `other` — the cheap O(1)
  /// overlap guard the level-3 kernels use to reject aliased outputs
  /// (an aliased C would be silently corrupted by packed accumulation).
  bool aliases(const Matrix& other) const {
    if (data_.empty() || other.data_.empty()) return false;
    const double* lo = data_.data();
    const double* hi = lo + data_.size();
    const double* olo = other.data_.data();
    const double* ohi = olo + other.data_.size();
    // std::less gives the total pointer order the raw < lacks for
    // pointers into distinct allocations.
    const std::less<const double*> lt;
    return lt(lo, ohi) && lt(olo, hi);
  }

  /// Contiguous view of column j.
  std::span<double> col_span(Index j) {
    assert(j >= 0 && j < cols_);
    return {data_.data() + static_cast<std::size_t>(j * rows_),
            static_cast<std::size_t>(rows_)};
  }
  std::span<const double> col_span(Index j) const {
    assert(j >= 0 && j < cols_);
    return {data_.data() + static_cast<std::size_t>(j * rows_),
            static_cast<std::size_t>(rows_)};
  }

  double* col_data(Index j) { return data_.data() + static_cast<std::size_t>(j * rows_); }
  const double* col_data(Index j) const {
    return data_.data() + static_cast<std::size_t>(j * rows_);
  }

  /// Copies of rows / columns / blocks (explicit copies by design: the
  /// factorizations in this library operate on owned buffers, and implicit
  /// aliasing views are the classic source of LAPACK-wrapper bugs).
  Vector col(Index j) const;
  Vector row(Index i) const;
  Matrix block(Index row0, Index col0, Index nrows, Index ncols) const;
  Matrix top_rows(Index n) const { return block(0, 0, n, cols_); }
  Matrix left_cols(Index n) const { return block(0, 0, rows_, n); }

  /// In-place writers for the same shapes.
  void set_col(Index j, const Vector& v);
  void set_row(Index i, const Vector& v);
  void set_block(Index row0, Index col0, const Matrix& m);

  void fill(double value);
  void resize(Index rows, Index cols, double value = 0.0);

  Matrix transposed() const;

  double norm_fro() const;     ///< Frobenius norm.
  double norm_inf() const;     ///< max row-sum norm.
  double norm_max() const;     ///< max |a_ij|

  Matrix& operator*=(double s);
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);

  /// Debug rendering (small matrices; rows truncated past `max_dim`).
  std::string to_string(Index max_dim = 8) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

/// Dense column-major matrix of floats — the working storage of the fp32
/// kernel fast path. Minimal on purpose: fp32 buffers exist only between
/// the to_single()/to_double() conversions in linalg/blas.hpp, so this
/// carries exactly what the packed engine and the fp32 orthonormalization
/// need (contiguous columns, aliasing guard) and nothing else.
class MatrixF {
 public:
  MatrixF() = default;
  MatrixF(Index rows, Index cols, float value = 0.0f)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), value) {
    PARSVD_REQUIRE(rows >= 0 && cols >= 0, "negative matrix dimension");
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float& operator()(Index i, Index j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }
  float operator()(Index i, Index j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* col_data(Index j) {
    return data_.data() + static_cast<std::size_t>(j * rows_);
  }
  const float* col_data(Index j) const {
    return data_.data() + static_cast<std::size_t>(j * rows_);
  }

  std::span<float> col_span(Index j) {
    assert(j >= 0 && j < cols_);
    return {data_.data() + static_cast<std::size_t>(j * rows_),
            static_cast<std::size_t>(rows_)};
  }
  std::span<const float> col_span(Index j) const {
    assert(j >= 0 && j < cols_);
    return {data_.data() + static_cast<std::size_t>(j * rows_),
            static_cast<std::size_t>(rows_)};
  }

  void fill(float value) {
    std::fill(data_.begin(), data_.end(), value);
  }

  /// Same O(1) storage-overlap guard as Matrix::aliases.
  bool aliases(const MatrixF& other) const {
    if (data_.empty() || other.data_.empty()) return false;
    const float* lo = data_.data();
    const float* hi = lo + data_.size();
    const float* olo = other.data_.data();
    const float* ohi = olo + other.data_.size();
    const std::less<const float*> lt;
    return lt(lo, ohi) && lt(olo, hi);
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<float> data_;
};

/// Elementwise arithmetic (shape-checked).
Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix operator*(double s, const Matrix& a);
Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
Vector operator*(double s, const Vector& a);

/// Horizontal / vertical concatenation (the streaming update's core op).
Matrix hcat(const Matrix& a, const Matrix& b);
Matrix vcat(const Matrix& a, const Matrix& b);
Matrix hcat(const std::vector<Matrix>& blocks);
Matrix vcat(const std::vector<Matrix>& blocks);

/// Max elementwise |a - b|; requires equal shapes.
double max_abs_diff(const Matrix& a, const Matrix& b);
double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace parsvd
