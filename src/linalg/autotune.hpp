// Kernel autotuner: measured blocking parameters instead of hand-set ones.
//
// The packed GEMM engine (gemm_engine.hpp) is parameterized by runtime
// cache blocks (MC, KC, NC) and a compile-time micro tile (MR, NR) chosen
// from a small instantiated candidate set, and the blocked QR by its panel
// width. Until this file existed those numbers were hand-set constants;
// now they come from a three-stage resolution, cached once per process:
//
//   1. built-in defaults (the former hand-set values);
//   2. a persisted JSON profile, if PARSVD_TUNE_PROFILE names a readable
//      file produced by a previous sweep() (versioned — a profile whose
//      version does not match is ignored with a warning, never trusted);
//   3. env overrides (PARSVD_GEMM_MC/KC/NC, PARSVD_QR_BLOCK) on top, so
//      one-off experiments still work without editing the profile.
//
// sweep() is the search itself: it times the packed engine across a grid
// of cache blocks x instantiated micro tiles per precision, and the
// blocked QR across panel widths, and returns the winner plus the
// tuned-vs-default deltas so callers (bench_kernels --tune) can persist
// the profile and record the improvement in BENCH_kernels.json.
#pragma once

#include <string>

#include "linalg/matrix.hpp"

namespace parsvd::autotune {

/// Full blocking description of one precision's packed GEMM path.
struct Blocking {
  Index mc = 0;  ///< rows of the packed A block (L2 resident)
  Index kc = 0;  ///< panel depth (L1/L2 resident)
  Index nc = 0;  ///< columns of the packed B block (L3 resident)
  Index mr = 0;  ///< micro-tile rows (compile-time kernel choice)
  Index nr = 0;  ///< micro-tile cols (compile-time kernel choice)

  bool operator==(const Blocking&) const = default;
};

/// Versioned tuning profile covering both precisions and the QR panel.
struct Profile {
  int version = 1;
  Blocking f64;
  Blocking f32;
  Index qr_block = 0;
  /// True when the values came from a measured sweep (persisted profiles
  /// record it; defaults are not "tuned").
  bool tuned = false;

  bool operator==(const Profile&) const = default;
};

/// The hand-set seed values the engine shipped with (fp64: 96/256/4032 at
/// 8x6; fp32 doubles KC — same packed bytes — and widens the micro row to
/// 16 so one packed row fills the same vector width as 8 doubles).
Profile default_profile();

/// The resolved process-wide profile (defaults -> PARSVD_TUNE_PROFILE
/// file -> env overrides), validated/clamped and cached on first use.
const Profile& active_profile();

/// Parse a profile written by save_profile(). Returns false (and leaves
/// `out` untouched) on read failure, malformed JSON, or version mismatch.
bool load_profile(const std::string& path, Profile& out);

/// Persist a profile as deterministic JSON (no timestamps — committable).
/// Throws parsvd::Error when the file cannot be written.
void save_profile(const Profile& profile, const std::string& path);

/// Clamp a blocking to the engine's legal ranges and round MC/NC to the
/// micro tile; falls back to `fallback`'s micro tile when (mr, nr) has no
/// instantiated kernel.
Blocking sanitize(const Blocking& requested, const Blocking& fallback);

/// One precision's tuned-vs-default measurement from sweep().
struct SweepEntry {
  Blocking best;
  double default_seconds = 0.0;  ///< probe time at default_profile() blocking
  double best_seconds = 0.0;     ///< probe time at `best`
  int candidates = 0;            ///< grid points actually timed
};

/// Everything one sweep() run measured.
struct SweepResult {
  Profile profile;      ///< winner (tuned = true), ready to persist
  SweepEntry f64;
  SweepEntry f32;
  Index probe_size = 0;      ///< GEMM probe dimension (probe_size^3)
  Index qr_rows = 0;         ///< QR probe shape
  Index qr_cols = 0;
  double qr_default_seconds = 0.0;
  double qr_best_seconds = 0.0;
};

/// Run the timed search. `smoke` shrinks the probe sizes and the grid so
/// the sweep finishes in CI-smoke time; the result is still a valid
/// profile, just a noisier one.
SweepResult sweep(bool smoke);

}  // namespace parsvd::autotune
