// Singular value decomposition front-end and backends.
//
// Two independently-implemented deterministic backends are provided:
//   * Jacobi            — QR-preconditioned one-sided Jacobi. The accurate
//                         default; computes small singular values to high
//                         relative accuracy.
//   * MethodOfSnapshots — eigendecomposition of the n x n Gram matrix AᵀA.
//                         O(m n^2) with a tiny constant; the classical POD
//                         route and the one the APMOS paper assumes when
//                         m >> n. Loses half the digits for σ near
//                         sqrt(eps)·σ_max, which tests document.
// Having two backends lets the test suite cross-validate them against each
// other on random matrices — the strongest correctness check available
// without a reference LAPACK.
//
// The convention throughout: thin SVD A = U diag(s) Vᵀ with U (m x r),
// s descending and non-negative, V (n x r), r = min(m, n) (or the
// requested truncation). V is returned untransposed.
#pragma once

#include "linalg/eigh.hpp"
#include "linalg/matrix.hpp"

namespace parsvd {

struct SvdResult {
  Matrix u;   ///< left singular vectors, one per column
  Vector s;   ///< singular values, descending, >= 0
  Matrix v;   ///< right singular vectors, one per column (not transposed)

  /// U diag(s) Vᵀ — reconstruction used by tests and error metrics.
  Matrix reconstruct() const;
};

enum class SvdMethod {
  Jacobi,
  MethodOfSnapshots,
  GolubKahan,
};

struct SvdOptions {
  SvdMethod method = SvdMethod::Jacobi;
  /// Keep only the leading `rank` triplets; 0 = full thin SVD.
  Index rank = 0;
  /// Jacobi sweep convergence threshold on normalized column coherence.
  double tol = 1e-13;
  int max_sweeps = 64;
  /// Eigensolver used by the MethodOfSnapshots backend for the Gram
  /// matrix (Tridiagonal is the faster choice for many snapshots).
  EighMethod eigh_method = EighMethod::Jacobi;
};

/// Thin SVD of a general dense matrix.
SvdResult svd(const Matrix& a, const SvdOptions& opts = {});

/// Direct entry points for the individual backends (used by tests and
/// by callers that know their matrix shape).
SvdResult svd_jacobi(const Matrix& a, const SvdOptions& opts = {});
SvdResult svd_method_of_snapshots(const Matrix& a, const SvdOptions& opts = {});
SvdResult svd_golub_kahan(const Matrix& a, const SvdOptions& opts = {});

/// Singular values only (cheapest path; currently Jacobi-backed).
Vector singular_values(const Matrix& a);

/// Moore-Penrose pseudoinverse via the SVD; singular values below
/// rcond * s_max are treated as zero (NumPy-compatible default).
Matrix pinv(const Matrix& a, double rcond = 1e-15);

/// Deterministic sign convention applied to an SVD: for every column j of
/// U, the entry of largest magnitude is made positive (ties broken by the
/// lowest index) and V's column is flipped to match.  Serial and
/// distributed runs then produce directly comparable modes.
void fix_svd_signs(Matrix& u, Matrix& v);

/// Variant for callers that only carry U (e.g. streaming modes).
void fix_mode_signs(Matrix& u);

}  // namespace parsvd
