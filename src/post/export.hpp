// Visualization exporters: PGM heatmaps of 2-D modes (the Fig. 2
// artifact) and terminal-friendly renderings for bench output.
#pragma once

#include <string>

#include "linalg/matrix.hpp"

namespace parsvd::post {

/// Write a grayscale PGM image of a lat-lon field stored row-major as a
/// flat vector of length n_lat * n_lon (lat-major, as Era5Synthetic lays
/// it out). Values are linearly mapped [min, max] → [0, 255].
void write_mode_pgm(const std::string& path, const Vector& field,
                    Index n_lat, Index n_lon);

/// ASCII heatmap of the same field, downsampled to at most
/// max_rows x max_cols character cells (shade ramp " .:-=+*#%@").
std::string ascii_heatmap(const Vector& field, Index n_lat, Index n_lon,
                          Index max_rows = 24, Index max_cols = 72);

/// ASCII line plot of a 1-D signal (used for Burgers mode shapes in the
/// bench output): `height` text rows, signal resampled to `width` cols.
std::string ascii_plot(const Vector& signal, Index height = 16,
                       Index width = 72);

}  // namespace parsvd::post
