// Post-processing metrics for comparing SVD results (the paper's
// `postprocessing` module, §4): sign alignment, per-mode errors, subspace
// angles, spectrum errors and reconstruction quality. These drive both
// the test-suite assertions and the Figure 1(a)/(b) error curves.
#pragma once

#include "linalg/matrix.hpp"

namespace parsvd::post {

/// Flip the sign of each column of `modes` to best match `reference`
/// (sign of the inner product). Singular vectors are defined up to sign;
/// every comparison below aligns first.
Matrix align_signs(const Matrix& modes, const Matrix& reference);

/// Per-mode absolute error vector |u_j - û_j| after sign alignment, for
/// one mode column: used to reproduce the paper's Fig 1(a)/(b) error
/// curves point-by-point.
Vector pointwise_mode_error(const Matrix& modes, const Matrix& reference,
                            Index mode);

/// L2 error per mode after sign alignment (length = min mode count).
Vector mode_errors_l2(const Matrix& modes, const Matrix& reference);

/// max |.| error per mode after sign alignment.
Vector mode_errors_max(const Matrix& modes, const Matrix& reference);

/// Principal angles (radians, ascending) between the column spaces —
/// computed from the singular values of Q_aᵀ Q_b after orthonormalizing
/// both. Robust to mode rotation within degenerate clusters, unlike
/// column-wise errors.
Vector principal_angles(const Matrix& a, const Matrix& b);

/// Largest principal angle (the subspace distance that matters).
double max_principal_angle(const Matrix& a, const Matrix& b);

/// Relative error per singular value: |s - ŝ| / max(s, tiny).
Vector spectrum_relative_error(const Vector& reference, const Vector& estimate);

/// ||A - U diag(s) Vᵀ||_F / ||A||_F.
double relative_reconstruction_error(const Matrix& a, const Matrix& u,
                                     const Vector& s, const Matrix& v);

/// ||A - U Uᵀ A||_F / ||A||_F — projection error when only left modes
/// are available (streaming results carry U and s but not V).
double relative_projection_error(const Matrix& a, const Matrix& u);

/// Absolute cosine similarity between a computed mode and a reference
/// mode (1 = identical up to sign).
double mode_cosine(const Matrix& modes, Index mode, const Matrix& reference,
                   Index ref_mode);

}  // namespace parsvd::post
