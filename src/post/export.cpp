#include "post/export.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace parsvd::post {
namespace {

std::pair<double, double> field_range(const Vector& field) {
  double lo = field[0], hi = field[0];
  for (Index i = 0; i < field.size(); ++i) {
    lo = std::min(lo, field[i]);
    hi = std::max(hi, field[i]);
  }
  if (hi <= lo) hi = lo + 1.0;
  return {lo, hi};
}

}  // namespace

void write_mode_pgm(const std::string& path, const Vector& field,
                    Index n_lat, Index n_lon) {
  PARSVD_REQUIRE(field.size() == n_lat * n_lon, "field size mismatch");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << "P5\n" << n_lon << ' ' << n_lat << "\n255\n";
  const auto [lo, hi] = field_range(field);
  const double scale = 255.0 / (hi - lo);
  for (Index la = 0; la < n_lat; ++la) {
    for (Index lo_idx = 0; lo_idx < n_lon; ++lo_idx) {
      const double v = field[la * n_lon + lo_idx];
      const int px = static_cast<int>(std::lround((v - lo) * scale));
      const unsigned char byte =
          static_cast<unsigned char>(std::clamp(px, 0, 255));
      out.write(reinterpret_cast<const char*>(&byte), 1);
    }
  }
  if (!out) throw IoError("write failed: " + path);
}

std::string ascii_heatmap(const Vector& field, Index n_lat, Index n_lon,
                          Index max_rows, Index max_cols) {
  PARSVD_REQUIRE(field.size() == n_lat * n_lon, "field size mismatch");
  PARSVD_REQUIRE(max_rows > 0 && max_cols > 0, "output size must be positive");
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp)) - 2;

  const Index rows = std::min(n_lat, max_rows);
  const Index cols = std::min(n_lon, max_cols);
  const auto [lo, hi] = field_range(field);
  const double scale = static_cast<double>(kLevels) / (hi - lo);

  std::string out;
  out.reserve(static_cast<std::size_t>(rows * (cols + 1)));
  for (Index r = 0; r < rows; ++r) {
    const Index la = r * n_lat / rows;
    for (Index c = 0; c < cols; ++c) {
      const Index lon = c * n_lon / cols;
      const double v = field[la * n_lon + lon];
      const int level =
          std::clamp(static_cast<int>((v - lo) * scale), 0, kLevels);
      out += kRamp[level];
    }
    out += '\n';
  }
  return out;
}

std::string ascii_plot(const Vector& signal, Index height, Index width) {
  PARSVD_REQUIRE(signal.size() > 0, "empty signal");
  PARSVD_REQUIRE(height >= 2 && width >= 2, "plot size too small");
  const auto [lo, hi] = field_range(signal);
  const double scale = static_cast<double>(height - 1) / (hi - lo);

  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  for (Index c = 0; c < width; ++c) {
    const Index i = c * (signal.size() - 1) / (width - 1);
    const int row =
        std::clamp(static_cast<int>(std::lround((signal[i] - lo) * scale)), 0,
                   static_cast<int>(height - 1));
    // Row 0 of the canvas is the top.
    canvas[static_cast<std::size_t>(height - 1 - row)]
          [static_cast<std::size_t>(c)] = '*';
  }
  std::string out;
  for (const auto& line : canvas) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace parsvd::post
