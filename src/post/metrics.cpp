#include "post/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace parsvd::post {

Matrix align_signs(const Matrix& modes, const Matrix& reference) {
  PARSVD_REQUIRE(modes.rows() == reference.rows(),
                 "align_signs: row count mismatch");
  Matrix out = modes;
  const Index k = std::min(out.cols(), reference.cols());
  for (Index j = 0; j < k; ++j) {
    if (dot(out.col_span(j), reference.col_span(j)) < 0.0) {
      scal(-1.0, out.col_span(j));
    }
  }
  return out;
}

Vector pointwise_mode_error(const Matrix& modes, const Matrix& reference,
                            Index mode) {
  PARSVD_REQUIRE(mode >= 0 && mode < modes.cols() && mode < reference.cols(),
                 "mode index out of range");
  const Matrix aligned = align_signs(modes, reference);
  Vector err(aligned.rows());
  const double* a = aligned.col_data(mode);
  const double* r = reference.col_data(mode);
  for (Index i = 0; i < aligned.rows(); ++i) err[i] = std::fabs(a[i] - r[i]);
  return err;
}

Vector mode_errors_l2(const Matrix& modes, const Matrix& reference) {
  const Matrix aligned = align_signs(modes, reference);
  const Index k = std::min(aligned.cols(), reference.cols());
  Vector err(k);
  for (Index j = 0; j < k; ++j) {
    double s = 0.0;
    const double* a = aligned.col_data(j);
    const double* r = reference.col_data(j);
    for (Index i = 0; i < aligned.rows(); ++i) {
      const double d = a[i] - r[i];
      s += d * d;
    }
    err[j] = std::sqrt(s);
  }
  return err;
}

Vector mode_errors_max(const Matrix& modes, const Matrix& reference) {
  const Matrix aligned = align_signs(modes, reference);
  const Index k = std::min(aligned.cols(), reference.cols());
  Vector err(k);
  for (Index j = 0; j < k; ++j) {
    double m = 0.0;
    const double* a = aligned.col_data(j);
    const double* r = reference.col_data(j);
    for (Index i = 0; i < aligned.rows(); ++i) {
      m = std::max(m, std::fabs(a[i] - r[i]));
    }
    err[j] = m;
  }
  return err;
}

Vector principal_angles(const Matrix& a, const Matrix& b) {
  PARSVD_REQUIRE(a.rows() == b.rows(), "principal_angles: row mismatch");
  Matrix qa = a;
  Matrix qb = b;
  orthonormalize_mgs2(qa);
  orthonormalize_mgs2(qb);
  const Matrix c = matmul(qa, qb, Trans::Yes, Trans::No);
  Vector cosines = singular_values(c);
  Vector angles(cosines.size());
  // Singular values descend, so angles ascend.
  for (Index i = 0; i < cosines.size(); ++i) {
    angles[i] = std::acos(std::clamp(cosines[i], -1.0, 1.0));
  }
  return angles;
}

double max_principal_angle(const Matrix& a, const Matrix& b) {
  const Vector angles = principal_angles(a, b);
  return angles.size() > 0 ? angles[angles.size() - 1] : 0.0;
}

Vector spectrum_relative_error(const Vector& reference, const Vector& estimate) {
  const Index k = std::min(reference.size(), estimate.size());
  Vector err(k);
  for (Index i = 0; i < k; ++i) {
    const double denom = std::max(std::fabs(reference[i]), 1e-300);
    err[i] = std::fabs(reference[i] - estimate[i]) / denom;
  }
  return err;
}

double relative_reconstruction_error(const Matrix& a, const Matrix& u,
                                     const Vector& s, const Matrix& v) {
  PARSVD_REQUIRE(u.cols() == s.size() && v.cols() == s.size(),
                 "factor width mismatch");
  Matrix us = u;
  for (Index j = 0; j < us.cols(); ++j) scal(s[j], us.col_span(j));
  const Matrix rec = matmul(us, v, Trans::No, Trans::Yes);
  const double denom = std::max(a.norm_fro(), 1e-300);
  return (a - rec).norm_fro() / denom;
}

double relative_projection_error(const Matrix& a, const Matrix& u) {
  PARSVD_REQUIRE(a.rows() == u.rows(), "projection: row mismatch");
  const Matrix coeff = matmul(u, a, Trans::Yes, Trans::No);
  const Matrix proj = matmul(u, coeff);
  const double denom = std::max(a.norm_fro(), 1e-300);
  return (a - proj).norm_fro() / denom;
}

double mode_cosine(const Matrix& modes, Index mode, const Matrix& reference,
                   Index ref_mode) {
  PARSVD_REQUIRE(modes.rows() == reference.rows(), "mode_cosine: row mismatch");
  PARSVD_REQUIRE(mode >= 0 && mode < modes.cols(), "mode index out of range");
  PARSVD_REQUIRE(ref_mode >= 0 && ref_mode < reference.cols(),
                 "reference mode index out of range");
  const double num =
      std::fabs(dot(modes.col_span(mode), reference.col_span(ref_mode)));
  const double denom = nrm2(modes.col_span(mode)) *
                       nrm2(reference.col_span(ref_mode));
  return denom > 0.0 ? num / denom : 0.0;
}

}  // namespace parsvd::post
