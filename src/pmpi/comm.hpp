// pmpi — a small message-passing runtime with MPI semantics.
//
// The paper's library runs on mpi4py; no MPI implementation is available
// in this environment, so pmpi provides the same programming model with
// ranks executed as OS threads inside one process:
//   * explicit point-to-point send/recv with (source, tag) matching and
//     per-channel FIFO ordering — the MPI guarantee algorithms rely on;
//   * the collectives PyParSVD uses (gather, bcast, scatter, allgather,
//     allreduce, reduce, barrier) built on top of point-to-point, with a
//     binomial-tree broadcast like production MPI libraries;
//   * communication-volume accounting (bytes per rank and total), which
//     feeds the weak-scaling cost model in the Figure 1(c) bench.
//
// Ranks do NOT share algorithm state: all inter-rank data flows through
// byte-copied messages, so every communication an MPI run would perform
// is performed (and counted) here too.  What this cannot reproduce is
// network latency/bandwidth — the scaling bench reports measured time and
// modeled communication volume separately for that reason.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "linalg/matrix.hpp"
#include "support/error.hpp"

namespace parsvd::pmpi {

/// Reduction operators for reduce/allreduce.
enum class Op { Sum, Max, Min };

/// Shared state of one communicator "job": mailboxes, barrier, counters.
/// Owned jointly by every Communicator handle of the job.
class Context {
 public:
  explicit Context(int size);

  int size() const { return size_; }

  /// Deliver a message into `dest`'s mailbox.
  void post(int src, int dest, int tag, std::vector<std::byte> payload);

  /// Block until a message with exactly (src, tag) is available for
  /// `dest` and return its payload. Matching is FIFO per (src, tag).
  std::vector<std::byte> wait(int dest, int src, int tag);

  /// Two-phase dissemination barrier over the mailbox fabric is not
  /// needed in-process; a generation-counted central barrier is exact.
  void barrier();

  /// Mark the job as failed and wake every blocked rank: any rank
  /// currently (or subsequently) blocked in wait()/barrier() throws
  /// CommError instead of deadlocking. Called by the run() harness when a
  /// rank function exits with an exception.
  void abort_job();
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Total payload bytes posted so far (all ranks).
  std::uint64_t total_bytes() const;

  /// Payload bytes posted by one rank.
  std::uint64_t rank_bytes(int rank) const;

  /// Total number of messages posted.
  std::uint64_t total_messages() const;

 private:
  struct PendingMessage {
    int src;
    int tag;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<PendingMessage> queue;
  };

  int size_;
  std::atomic<bool> aborted_{false};
  std::vector<std::unique_ptr<Mailbox>> boxes_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  mutable std::mutex stats_mu_;
  std::vector<std::uint64_t> bytes_by_rank_;
  std::uint64_t messages_ = 0;
};

/// Per-rank handle: the library-facing API (mirrors the MPI calls used in
/// PyParSVD Listings 3 and 4).
class Communicator {
 public:
  Communicator(int rank, std::shared_ptr<Context> ctx);

  int rank() const { return rank_; }
  int size() const { return ctx_->size(); }
  bool is_root() const { return rank_ == 0; }
  Context& context() { return *ctx_; }
  const Context& context() const { return *ctx_; }

  // ------------------------------------------------------- point-to-point

  /// Blocking-buffered send of trivially copyable elements.
  template <typename T>
  void send(std::span<const T> data, int dest, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_peer(dest);
    check_tag(tag);
    std::vector<std::byte> payload(data.size_bytes());
    std::memcpy(payload.data(), data.data(), data.size_bytes());
    ctx_->post(rank_, dest, tag, std::move(payload));
  }

  /// Blocking receive; returns the full payload reinterpreted as T.
  template <typename T>
  std::vector<T> recv(int src, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_peer(src);
    check_tag(tag);
    const std::vector<std::byte> payload = ctx_->wait(rank_, src, tag);
    PARSVD_REQUIRE(payload.size() % sizeof(T) == 0,
                   "received payload not a whole number of elements");
    std::vector<T> out(payload.size() / sizeof(T));
    std::memcpy(out.data(), payload.data(), payload.size());
    return out;
  }

  /// Matrix-valued send/recv (shape travels with the data).
  void send_matrix(const Matrix& m, int dest, int tag = 0);
  Matrix recv_matrix(int src, int tag = 0);

  // ----------------------------------------------------------- collectives
  // Every collective must be called by all ranks of the communicator, in
  // the same order — the MPI contract.

  void barrier() { ctx_->barrier(); }

  /// Binomial-tree broadcast; `data` is input at root, output elsewhere.
  template <typename T>
  void bcast(std::vector<T>& data, int root = 0);

  void bcast_matrix(Matrix& m, int root = 0);
  void bcast_double(double& value, int root = 0);
  void bcast_index(Index& value, int root = 0);

  /// Gather per-rank matrices at root, indexed by source rank. Non-root
  /// ranks receive an empty vector.
  std::vector<Matrix> gather_matrices(const Matrix& local, int root = 0);

  /// Gather variable-length element buffers at root (concatenated in rank
  /// order); the per-rank lengths are returned via `counts` at root.
  template <typename T>
  std::vector<T> gatherv(std::span<const T> local, int root,
                         std::vector<std::size_t>* counts = nullptr);

  /// Allgather of one scalar per rank → vector indexed by rank.
  std::vector<double> allgather_double(double value);
  std::vector<Index> allgather_index(Index value);

  /// Scatter row-blocks of a matrix held at root: rank i receives
  /// rows [offsets[i], offsets[i] + rows_per_rank[i]). Only root reads
  /// `full`.
  Matrix scatter_rows(const Matrix& full, std::span<const Index> rows_per_rank,
                      int root = 0);

  /// Elementwise reduction to root; `data` must be the same length on
  /// every rank. Non-root contents are left untouched.
  void reduce(std::span<double> data, Op op, int root = 0);

  /// Reduction visible on every rank.
  void allreduce(std::span<double> data, Op op);
  double allreduce_scalar(double value, Op op);

 private:
  void check_peer(int peer) const {
    PARSVD_REQUIRE(peer >= 0 && peer < size(), "peer rank out of range");
  }
  static void check_tag(int tag) {
    PARSVD_REQUIRE(tag >= 0, "user tags must be non-negative");
  }

  // Internal tag space for collectives (kept clear of user tags by using
  // values the public API rejects).
  static constexpr int kTagBcast = -2;
  static constexpr int kTagGather = -3;
  static constexpr int kTagScatter = -4;
  static constexpr int kTagReduce = -5;

  void send_bytes(std::vector<std::byte> payload, int dest, int tag);
  std::vector<std::byte> recv_bytes(int src, int tag);

  int rank_;
  std::shared_ptr<Context> ctx_;
};

template <typename T>
void Communicator::bcast(std::vector<T>& data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  check_peer(root);
  const int p = size();
  if (p == 1) return;
  // Rotate ranks so the tree is rooted at `root`.
  const int vrank = (rank_ - root + p) % p;

  // Classic binomial tree: walk masks upward until our set bit is found
  // (that identifies our parent), then fan out to children at every mask
  // below it.  Root walks past all masks and fans out to everyone's
  // subtree heads.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int parent = ((vrank ^ mask) + root) % p;
      const std::vector<std::byte> payload = ctx_->wait(rank_, parent, kTagBcast);
      data.resize(payload.size() / sizeof(T));
      std::memcpy(data.data(), payload.data(), payload.size());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int child = (vrank + mask + root) % p;
      std::vector<std::byte> payload(data.size() * sizeof(T));
      std::memcpy(payload.data(), data.data(), payload.size());
      ctx_->post(rank_, child, kTagBcast, std::move(payload));
    }
    mask >>= 1;
  }
}

template <typename T>
std::vector<T> Communicator::gatherv(std::span<const T> local, int root,
                                     std::vector<std::size_t>* counts) {
  static_assert(std::is_trivially_copyable_v<T>);
  check_peer(root);
  if (rank_ != root) {
    std::vector<std::byte> payload(local.size_bytes());
    std::memcpy(payload.data(), local.data(), local.size_bytes());
    ctx_->post(rank_, root, kTagGather, std::move(payload));
    return {};
  }
  std::vector<T> out;
  if (counts) counts->assign(static_cast<std::size_t>(size()), 0);
  for (int src = 0; src < size(); ++src) {
    std::vector<T> chunk;
    if (src == root) {
      chunk.assign(local.begin(), local.end());
    } else {
      const std::vector<std::byte> payload = ctx_->wait(rank_, src, kTagGather);
      chunk.resize(payload.size() / sizeof(T));
      std::memcpy(chunk.data(), payload.data(), payload.size());
    }
    if (counts) (*counts)[static_cast<std::size_t>(src)] = chunk.size();
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

/// Launch `size` ranks (threads), each running fn(comm). Joins all ranks;
/// the first rank exception (by rank order) is rethrown in the caller.
void run(int size, const std::function<void(Communicator&)>& fn);

/// As `run`, but also returns the context for post-mortem statistics
/// (communication volume, message counts).
std::shared_ptr<Context> run_with_stats(
    int size, const std::function<void(Communicator&)>& fn);

}  // namespace parsvd::pmpi
