// pmpi — a small message-passing runtime with MPI semantics.
//
// The paper's library runs on mpi4py; no MPI implementation is available
// in this environment, so pmpi provides the same programming model with
// ranks executed as OS threads inside one process:
//   * explicit point-to-point send/recv with (source, tag) matching and
//     per-channel FIFO ordering — the MPI guarantee algorithms rely on;
//   * the collectives PyParSVD uses (gather, bcast, scatter, allgather,
//     allreduce, reduce, barrier) built on top of point-to-point, with a
//     binomial-tree broadcast like production MPI libraries;
//   * communication-volume accounting (bytes per rank and total), which
//     feeds the weak-scaling cost model in the Figure 1(c) bench.
//
// Ranks do NOT share algorithm state: all inter-rank data flows through
// byte-copied messages, so every communication an MPI run would perform
// is performed (and counted) here too.  What this cannot reproduce is
// network latency/bandwidth — the scaling bench reports measured time and
// modeled communication volume separately for that reason.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <thread>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pmpi/fault.hpp"
#include "pmpi/request.hpp"
#include "pmpi/tags.hpp"
#include "pmpi/topology.hpp"
#include "support/error.hpp"

namespace parsvd::pmpi {

/// Reduction operators for reduce/allreduce.
enum class Op { Sum, Max, Min };

// CollectiveAlgo and the schedule math every collective follows live in
// pmpi/topology.hpp, shared with the static verifier (src/verify): the
// schedule the model checker proves deadlock-free is the schedule these
// methods post.

/// Serialize a matrix into the wire format used by send_matrix (shape
/// header + column-major body). Exposed so degraded-mode callers can
/// build composite payloads (metadata + matrix) for one atomic gather.
std::vector<std::byte> pack_matrix(const Matrix& m);
/// Append the wire form of `m` to `out` — lets composite payloads
/// (header + matrix) be built in ONE buffer that is then moved into
/// Context::post, instead of packing into a temporary and copying.
void pack_matrix_into(const Matrix& m, std::vector<std::byte>& out);
Matrix unpack_matrix(std::span<const std::byte> payload);

class Context;

/// An ordered subset of a Context's world ranks with its own dense rank
/// numbering [0, size()). Minted by Context::group_for — one shared
/// instance per distinct ordered member list, so every member rank that
/// derives the same list gets the same Group (and the same id) with no
/// extra communication. Group ids start at 1 (0 is the implicit world
/// communicator) and key both the group's private wire-tag band
/// (tags::group_scope) and its metric series ("comm.group<id>.messages"
/// / "comm.group<id>.bytes" in the context registry).
class Group {
 public:
  /// Dense group id >= 1, stable for the Context's lifetime.
  int id() const { return id_; }
  int size() const { return static_cast<int>(members_.size()); }
  /// Group rank -> world rank, in group rank order.
  const std::vector<int>& members() const { return members_; }
  int world_rank(int group_rank) const {
    return members_[static_cast<std::size_t>(group_rank)];
  }
  /// World rank -> group rank; -1 for non-members.
  int group_rank_of_world(int world_rank) const {
    return world_to_group_[static_cast<std::size_t>(world_rank)];
  }
  /// Bump the group's metric series for one posted message. Counters are
  /// owned by the context registry; this is the group-scoped view of the
  /// same traffic "comm.messages"/"comm.bytes" count world-wide.
  void note_post(std::size_t bytes) const {
    messages_->add(1);
    bytes_->add(bytes);
  }

 private:
  friend class Context;
  Group() = default;
  int id_ = 0;
  std::vector<int> members_;
  std::vector<int> world_to_group_;
  obs::Counter* messages_ = nullptr;
  obs::Counter* bytes_ = nullptr;
};

/// Shared state of one communicator "job": mailboxes, barrier, counters,
/// reliability envelope and fault-injection hooks.
/// Owned jointly by every Communicator handle of the job.
class Context {
 public:
  explicit Context(int size);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  int size() const { return size_; }

  /// Deliver a message into `dest`'s mailbox. With the reliability layer
  /// on, the payload travels in an envelope (per-channel sequence number
  /// + checksum); the installed FaultPlan may drop/delay/duplicate/
  /// truncate the delivered copy or kill `src` (RankKilledError).
  void post(int src, int dest, int tag, std::vector<std::byte> payload);

  /// Block until a message with exactly (src, tag) is available for
  /// `dest` and return its payload. Matching is FIFO per (src, tag).
  /// The envelope layer discards duplicates, recovers dropped/corrupted
  /// messages from the retransmit log, and converts unrecoverable losses
  /// into typed errors: CommTimeout once the wait timeout (plus bounded
  /// backoff retries) expires, RankDeadError when `src` is dead with no
  /// recoverable message in flight.
  std::vector<std::byte> wait(int dest, int src, int tag);

  /// One point-to-point channel, as named by the multi-channel waits.
  struct Channel {
    int src;
    int tag;
  };

  /// Non-blocking counterpart of wait(): consume and return the next
  /// deliverable (src, tag) message if there is one, nullopt otherwise.
  /// Runs the same envelope recovery as wait() and throws the same
  /// RankDeadError / JobAbortedError once the message can no longer
  /// arrive. Does NOT advance the fault-plan op counter — non-blocking
  /// receives account their operation once, at post time, so polling
  /// frequency cannot perturb a deterministic fault schedule.
  std::optional<std::vector<std::byte>> try_wait(int dest, int src, int tag);

  /// Block until ANY of `channels` has a deliverable message for `dest`;
  /// returns (channel index, payload). Scans channels in order each
  /// round, so an already-queued earlier channel wins ties. Throws
  /// RankDeadError only when every queried source is dead with nothing
  /// recoverable — while one source lives, messages already posted by
  /// dead ones are still consumed. Like try_wait, never accounts an op.
  std::pair<std::size_t, std::vector<std::byte>> wait_any(
      int dest, std::span<const Channel> channels);

  /// Advance `rank`'s operation counter (and evaluate kill faults) as
  /// one communication operation. post/wait/barrier call this
  /// internally; the non-blocking layer calls it when a receive is
  /// POSTED so the per-rank op sequence is deterministic under polling.
  std::uint64_t account_op(int rank);

  /// Debug-build channel discipline for non-blocking receives: at most
  /// one outstanding irecv per (dest, src, tag). A second registration
  /// throws a typed CommError naming the channel; release builds
  /// compile both calls to no-ops.
  void register_irecv(int dest, int src, int tag);
  void unregister_irecv(int dest, int src, int tag);

  /// Mint (or look up) the group with exactly this ordered world-rank
  /// member list. Deterministic per list: the first caller allocates the
  /// next id, every later caller with the same list gets the shared
  /// instance — so all members of one split/subgroup agree on the id
  /// without any extra protocol. Concurrent first mints of DIFFERENT
  /// lists take arrival order; callers that need run-to-run stable ids
  /// either mint in a fixed order (Communicator::split does) or pre-mint
  /// here before ranks start.
  std::shared_ptr<const Group> group_for(std::vector<int> members);

  // ------------------------------------------- collective algorithm policy
  // Job-wide so all ranks agree on the topology (see CollectiveAlgo).
  // Configure before ranks start communicating, or between collectives.
  // Defaults come from PARSVD_COMM_ALGO / PARSVD_COMM_EAGER_BYTES /
  // PARSVD_COMM_TREE_MIN_RANKS.

  void set_collective_algo(CollectiveAlgo algo) {
    collective_algo_.store(algo, std::memory_order_relaxed);
  }
  CollectiveAlgo collective_algo() const {
    return collective_algo_.load(std::memory_order_relaxed);
  }

  /// Auto policy: reduce/allreduce payloads at or above this take the
  /// log(P) path (below it, one eager flat round trip is cheaper than
  /// tree latency).
  void set_eager_threshold_bytes(std::uint64_t bytes) {
    eager_bytes_.store(bytes, std::memory_order_relaxed);
  }
  std::uint64_t eager_threshold_bytes() const {
    return eager_bytes_.load(std::memory_order_relaxed);
  }

  /// Auto policy: jobs with fewer ranks than this keep flat gather /
  /// reduce topologies (the tree only shortens the root's critical path
  /// once there are enough ranks to amortize the extra hops).
  void set_tree_min_ranks(int ranks) {
    tree_min_ranks_.store(ranks, std::memory_order_relaxed);
  }
  int tree_min_ranks() const {
    return tree_min_ranks_.load(std::memory_order_relaxed);
  }

  /// Two-phase dissemination barrier over the mailbox fabric is not
  /// needed in-process; a generation-counted central barrier is exact.
  /// Dead ranks are not waited for; pass the calling rank so fault
  /// injection can account (and possibly kill) the operation.
  void barrier(int rank = -1);

  /// Mark the job as failed and wake every blocked rank: any rank
  /// currently (or subsequently) blocked in wait()/barrier() throws
  /// CommError instead of deadlocking. Called by the run() harness when a
  /// rank function exits with an exception.
  void abort_job();
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  // --------------------------------------------- fault injection / faults

  /// Install a fault schedule (before ranks start communicating). Arms
  /// the retransmit log; if no wait timeout is configured yet, a default
  /// of 2000 ms is set so injected losses can never hang a rank.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return plan_; }

  /// Maximum blocking time of one wait() before recovery/retry kicks in.
  /// Zero (the default without a fault plan) waits forever.
  void set_wait_timeout(std::chrono::milliseconds timeout);

  /// Deadline extensions (with exponential backoff) granted after the
  /// first timeout before CommTimeout is thrown. Default 3.
  void set_max_retries(int retries);

  /// Toggle the checksum/sequence envelope. On by default; the fault
  /// overhead bench toggles it off to measure the zero-fault cost.
  /// Must not change while ranks are communicating.
  void set_reliability(bool enabled) {
    reliability_.store(enabled, std::memory_order_relaxed);
  }
  bool reliability() const {
    return reliability_.load(std::memory_order_relaxed);
  }

  /// Reject any single payload larger than this (typed CommError).
  void set_max_payload_bytes(std::uint64_t bytes) { max_payload_ = bytes; }
  std::uint64_t max_payload_bytes() const { return max_payload_; }

  /// Mark `rank` dead and wake every blocked rank so waits on it turn
  /// into typed errors (or degraded-mode exclusion) instead of hangs.
  void mark_dead(int rank);
  bool is_dead(int rank) const {
    return dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  int alive_count() const { return size_ - dead_count_.load(std::memory_order_acquire); }
  std::vector<int> dead_ranks() const;

  /// Operations (post/wait/barrier) `rank` has performed so far. The
  /// per-rank sequence is deterministic for a fixed workload, so a probe
  /// run's count is how tests aim kill_rank at a specific later phase.
  std::uint64_t ops(int rank) const {
    return op_counters_[static_cast<std::size_t>(rank)].load(
        std::memory_order_relaxed);
  }

  // ------------------------------------------------------------ statistics

  /// Total payload bytes posted so far (all ranks).
  std::uint64_t total_bytes() const;

  /// Payload bytes posted by one rank.
  std::uint64_t rank_bytes(int rank) const;

  /// Total number of messages posted.
  std::uint64_t total_messages() const;

  /// Messages recovered from the retransmit log (drops + corruptions).
  std::uint64_t retransmits() const { return retransmits_->value(); }

  /// Faults the installed plan actually injected.
  std::uint64_t faults_injected() const { return faults_injected_->value(); }

  /// The per-context metrics registry backing every statistic above —
  /// the single source of truth ("comm.messages", "comm.bytes",
  /// "comm.rank<r>.bytes", "comm.retransmits", "comm.faults_injected",
  /// "comm.timeouts", "comm.timeout_retries", "comm.payload_bytes"
  /// histogram). The accessors above are views into it.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

 private:
  using Clock = std::chrono::steady_clock;
  /// One point-to-point channel as the envelope layer sees it: messages
  /// of one sender arriving at this mailbox under one tag.
  using ChannelKey = std::pair<int, int>;  // (src, tag)

  struct PendingMessage {
    int src;
    int tag;
    std::uint64_t seq;       // per-channel sequence number (envelope)
    std::uint64_t checksum;  // checksum of the ORIGINAL payload
    Clock::time_point deliver_after;  // epoch = deliverable immediately
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<PendingMessage> queue;
    // Envelope bookkeeping, all under `mu`: next sequence number to
    // assign per channel (sender side), next expected per channel
    // (receiver side), and the retransmit log holding the original
    // payloads of lossy-faulted messages until their seq is consumed.
    std::map<ChannelKey, std::uint64_t> send_seq;
    std::map<ChannelKey, std::uint64_t> recv_seq;
    std::map<ChannelKey, std::map<std::uint64_t, std::vector<std::byte>>> log;
  };

  /// One pass over dest's queue for the next deliverable (src, tag)
  /// message: drops stale duplicates, skips out-of-order successors,
  /// honours delayed delivery (folding the earliest wake-up into
  /// *next_deliverable), recovers corrupted payloads from the
  /// retransmit log, and falls back to the log for swallowed drops. On
  /// success the message is consumed (sequence advanced, acked log
  /// entries pruned) and its payload moved into *out. Caller holds
  /// box.mu.
  bool scan_channel_locked(Mailbox& box, int dest, int src, int tag,
                           std::vector<std::byte>* out,
                           Clock::time_point* next_deliverable);

  /// Shared engine under wait / wait_any: blocking multi-channel scan
  /// with the lazily-armed watchdog deadline and backoff retries. Never
  /// accounts an op (callers decide).
  std::pair<std::size_t, std::vector<std::byte>> wait_any_impl(
      int dest, std::span<const Channel> channels);

  /// Lazily start the deadline watchdog (bounded waits sleep untimed and
  /// rely on its periodic mailbox wakes to re-check their deadline).
  void ensure_watchdog();
  void watchdog_loop();

  int size_;
  std::atomic<bool> aborted_{false};
  std::vector<std::unique_ptr<Mailbox>> boxes_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Communication statistics live in the per-context metrics registry;
  // the hot-path pointers below are resolved once at construction so
  // post() pays one relaxed atomic add per series, no mutex.
  obs::Registry metrics_;
  obs::Counter* messages_total_ = nullptr;
  obs::Counter* bytes_total_ = nullptr;
  std::vector<obs::Counter*> bytes_by_rank_;
  obs::Histogram* payload_hist_ = nullptr;

  FaultPlan plan_;
  bool plan_active_ = false;
  bool plan_can_kill_ = false;  // cached plan_.can_kill(): skips the
                                // per-operation kill lookup for plans
                                // that only fault messages
  std::atomic<bool> reliability_{true};
  std::chrono::milliseconds wait_timeout_{0};
  int max_retries_ = 3;
  std::uint64_t max_payload_ = std::uint64_t{1} << 33;  // 8 GiB
  std::vector<std::atomic<std::uint64_t>> op_counters_;
  std::vector<std::atomic<bool>> dead_;
  std::atomic<int> dead_count_{0};
  /// Watchdog tick period: the granularity of bounded-wait deadlines.
  /// Coarse on purpose — the timeout is hang protection, not a precise
  /// timer, and the coarse tick keeps armed timers off the message path.
  static constexpr std::chrono::milliseconds kWatchdogTick{20};
  std::thread watchdog_;
  std::atomic<bool> watchdog_started_{false};
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<std::uint64_t> watchdog_ticks_{0};
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  obs::Counter* retransmits_ = nullptr;
  obs::Counter* faults_injected_ = nullptr;
  obs::Counter* timeouts_ = nullptr;
  obs::Counter* timeout_retries_ = nullptr;

  std::atomic<CollectiveAlgo> collective_algo_{CollectiveAlgo::Auto};
  std::atomic<std::uint64_t> eager_bytes_{std::uint64_t{1} << 14};  // 16 KiB
  std::atomic<int> tree_min_ranks_{8};

  // Debug-build registry of outstanding non-blocking receives, keyed
  // (dest, src, tag). Unused (but kept declared, for a single layout
  // across build types) in release builds.
  std::mutex irecv_mu_;
  std::set<std::tuple<int, int, int>> open_irecvs_;

  // Communicator groups, keyed by their ordered member list so every
  // member minting the same subgroup resolves to one shared instance.
  std::mutex groups_mu_;
  std::map<std::vector<int>, std::shared_ptr<const Group>> groups_;
  int next_group_id_ = 1;
};

/// Per-rank handle: the library-facing API (mirrors the MPI calls used in
/// PyParSVD Listings 3 and 4).
///
/// A Communicator is either the world communicator (every Context rank,
/// world rank numbering, raw tags on the wire) or a GROUP communicator
/// produced by split()/subgroup(): ranks are the group's dense
/// [0, size()) numbering, and every post/wait internally translates
/// (rank, tag) to (world rank, tags::group_scope(id, tag)) — so the full
/// API, the collectives, the reliability envelope, fault injection and
/// the Request layer work unchanged on subgroups, and sibling groups can
/// run concurrently on one Context without tag collisions.
class Communicator {
 public:
  Communicator(int rank, std::shared_ptr<Context> ctx);
  /// Group communicator: `rank` is the GROUP-local rank of this handle
  /// inside `group` (pass the result of Group::group_rank_of_world).
  Communicator(int rank, std::shared_ptr<Context> ctx,
               std::shared_ptr<const Group> group);

  int rank() const { return rank_; }
  int size() const { return group_ ? group_->size() : ctx_->size(); }
  bool is_root() const { return rank_ == 0; }
  Context& context() { return *ctx_; }
  const Context& context() const { return *ctx_; }

  /// The group behind this communicator; nullptr for the world
  /// communicator.
  const Group* group() const { return group_.get(); }
  /// This handle's rank in the underlying Context (== rank() on the
  /// world communicator).
  int world_rank() const { return wr(rank_); }

  // ------------------------------------------------- communicator groups

  /// Collective over this communicator (MPI_Comm_split semantics): ranks
  /// passing the same non-negative `color` form one subgroup, ordered by
  /// (key, parent rank); `color < 0` opts out and yields nullopt. One
  /// allgather of (color, key) over the parent is the only
  /// communication; every member then derives the member list locally
  /// and resolves the same shared Group. Groups are minted in ascending
  /// color order, so ids are deterministic run-to-run.
  std::optional<Communicator> split(int color, int key = 0);

  /// Purely local subgroup of this communicator's ranks: every member of
  /// `ranks` must call with an identical list (the MPI_Comm_create
  /// contract); non-members may call and get nullopt. `ranks` order
  /// defines the group's dense numbering. No communication — but
  /// concurrent FIRST mints of different lists get arrival-order ids;
  /// pre-mint via Context::group_for when ids must be run-to-run stable.
  std::optional<Communicator> subgroup(std::span<const int> ranks) const;

  /// Dead ranks as THIS communicator numbers them: group-local ranks on
  /// a group communicator (a sibling group's dead rank is invisible
  /// here — the death-isolation contract), world ranks on the world
  /// communicator.
  std::vector<int> dead_ranks() const;
  bool is_dead(int rank) const { return ctx_->is_dead(wr(rank)); }
  int alive_count() const;

  // ------------------------------------------------------- point-to-point

  /// Blocking-buffered send of trivially copyable elements. Payloads
  /// beyond the context's size cap raise a typed CommError before any
  /// buffering happens.
  template <typename T>
  void send(std::span<const T> data, int dest, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_peer(dest);
    check_tag(tag);
    check_payload(data.size_bytes());
    std::vector<std::byte> payload(data.size_bytes());
    std::memcpy(payload.data(), data.data(), data.size_bytes());
    post_scoped(dest, tag, std::move(payload));
  }

  /// Blocking receive; returns the full payload reinterpreted as T.
  template <typename T>
  std::vector<T> recv(int src, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_peer(src);
    check_tag(tag);
    const std::vector<std::byte> payload = wait_scoped(src, tag);
    PARSVD_REQUIRE(payload.size() % sizeof(T) == 0,
                   "received payload not a whole number of elements");
    std::vector<T> out(payload.size() / sizeof(T));
    std::memcpy(out.data(), payload.data(), payload.size());
    return out;
  }

  /// Matrix-valued send/recv (shape travels with the data).
  void send_matrix(const Matrix& m, int dest, int tag = 0);
  Matrix recv_matrix(int src, int tag = 0);

  // ------------------------------------------------- non-blocking layer
  // isend posts immediately (buffered) and returns an already-complete
  // request; irecv registers a channel and completes via test()/wait()/
  // wait_any(). See request.hpp for the full lifecycle contract.

  template <typename T>
  Request isend(std::span<const T> data, int dest, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_peer(dest);
    check_tag(tag);
    check_payload(data.size_bytes());
    std::vector<std::byte> payload(data.size_bytes());
    std::memcpy(payload.data(), data.data(), data.size_bytes());
    post_scoped(dest, tag, std::move(payload));
    return Request(ctx_, Request::Kind::Send, wr(rank_), wr(dest),
                   wire_tag(tag), /*done=*/true);
  }

  Request isend_matrix(const Matrix& m, int dest, int tag = 0);

  /// Post a non-blocking receive on (src, tag). The fault-plan op is
  /// accounted here, once; debug builds reject a second outstanding
  /// irecv on the same channel.
  Request irecv(int src, int tag = 0);

  // ----------------------------------------------------------- collectives
  // Every collective must be called by all ranks of the communicator, in
  // the same order — the MPI contract.

  /// World communicator: the context's central generation barrier.
  /// Group communicator: a message-based flat gather + release on the
  /// group's scoped tags::kBarrier channel, so a member death surfaces
  /// here (RankDeadError) and never stalls a sibling group's barrier.
  void barrier();

  /// Binomial-tree broadcast; `data` is input at root, output elsewhere.
  template <typename T>
  void bcast(std::vector<T>& data, int root = 0);

  void bcast_matrix(Matrix& m, int root = 0);
  void bcast_double(double& value, int root = 0);
  void bcast_index(Index& value, int root = 0);

  /// Gather per-rank matrices at root, indexed by source rank. Non-root
  /// ranks receive an empty vector.
  std::vector<Matrix> gather_matrices(const Matrix& local, int root = 0);

  /// Gather variable-length element buffers at root (concatenated in rank
  /// order); the per-rank lengths are returned via `counts` at root.
  template <typename T>
  std::vector<T> gatherv(std::span<const T> local, int root,
                         std::vector<std::size_t>* counts = nullptr);

  /// Allgather of one scalar per rank → vector indexed by rank.
  std::vector<double> allgather_double(double value);
  std::vector<Index> allgather_index(Index value);

  /// Scatter row-blocks of a matrix held at root: rank i receives
  /// rows [offsets[i], offsets[i] + rows_per_rank[i]). Only root reads
  /// `full`.
  Matrix scatter_rows(const Matrix& full, std::span<const Index> rows_per_rank,
                      int root = 0);

  /// Elementwise reduction to root; `data` must be the same length on
  /// every rank. Non-root contents are left untouched.
  void reduce(std::span<double> data, Op op, int root = 0);

  /// Reduction visible on every rank.
  void allreduce(std::span<double> data, Op op);
  double allreduce_scalar(double value, Op op);

  // ------------------------------------- fault-tolerant (degraded) mode
  // Flat-topology collectives that exclude ranks marked dead and absorb
  // deaths racing with the collective. Contract: every SURVIVING rank
  // calls them in the same order; the root must survive (root death is
  // unrecoverable and surfaces as RankDeadError). Messages posted by a
  // rank before its death are still consumed, so a contribution is only
  // lost when the rank died before sending it.

  /// Gather one raw payload per rank at root; result[i] is rank i's
  /// payload, nullopt when rank i is dead and its payload unrecoverable.
  /// Non-root ranks receive an empty vector.
  std::vector<std::optional<std::vector<std::byte>>> gather_bytes_ft(
      std::span<const std::byte> local, int root = 0);
  /// Move overload: callers that build the wire buffer themselves hand
  /// it over without another copy (the span form copies into this one).
  std::vector<std::optional<std::vector<std::byte>>> gather_bytes_ft(
      std::vector<std::byte>&& local, int root = 0);

  /// As gather_matrices, but dead ranks yield nullopt at root.
  std::vector<std::optional<Matrix>> gather_matrices_ft(const Matrix& local,
                                                        int root = 0);

  /// Root fans `payload` directly out to every living rank.
  void bcast_bytes_ft(std::vector<std::byte>& payload, int root = 0);
  void bcast_matrix_ft(Matrix& m, int root = 0);
  void bcast_doubles_ft(std::vector<double>& values, int root = 0);

  /// Sum-allreduce over the survivors: dead ranks' contributions are
  /// simply absent from the sum.
  void allreduce_sum_ft(std::span<double> data, int root = 0);

 private:
  void check_peer(int peer) const {
    PARSVD_REQUIRE(peer >= 0 && peer < size(), "peer rank out of range");
  }
  void check_tag(int tag) const {
    PARSVD_REQUIRE(tag >= 0, "user tags must be non-negative");
    PARSVD_REQUIRE(!group_ || tag < tags::kGroupUserLimit,
                   "group communicator user tags must be below "
                   "tags::kGroupUserLimit (the scoped band is finite)");
  }
  /// Reject degenerate payload sizes with a typed CommError before any
  /// buffer is allocated (oversized sends were previously unguarded).
  void check_payload(std::size_t bytes) const;

  // Collective tags live in the tags:: registry (tags.hpp); they are
  // negative, which the public API rejects for user traffic.

  // ------------------------------------- group rank/tag translation
  // EVERY context access of this communicator funnels through these:
  // on a group communicator they translate local ranks to world ranks
  // and relocate local tags into the group's scoped band, and
  // post_scoped additionally bumps the group's metric series. On the
  // world communicator all three are identities.

  int wr(int rank) const { return group_ ? group_->world_rank(rank) : rank; }
  int wire_tag(int tag) const {
    return group_ ? tags::group_scope(group_->id(), tag) : tag;
  }
  void post_scoped(int dest, int tag, std::vector<std::byte> payload);
  std::vector<std::byte> wait_scoped(int src, int tag);

  // ----------------------------------- collective topology dispatch
  // Policy predicates evaluate Context-wide settings plus inputs every
  // rank agrees on (rank count; symmetric reduce lengths), so all ranks
  // of one collective call pick the same topology.
  bool use_tree_gather() const;
  bool use_tree_reduce(std::size_t bytes) const;

  /// Gather engine under gatherv / gather_matrices: returns, at root,
  /// one payload per rank (indexed by source); empty elsewhere. Flat
  /// root loop or binomial tree with framed subtree aggregation,
  /// depending on policy.
  std::vector<std::vector<std::byte>> gather_bytes_impl(
      std::vector<std::byte> local, int root);
  std::vector<std::vector<std::byte>> gather_bytes_tree(
      std::vector<std::byte> local, int root);

  void reduce_tree(std::span<double> data, Op op, int root);
  void allreduce_rd(std::span<double> data, Op op);

  // Group-local rank on a group communicator, world rank otherwise.
  int rank_;
  std::shared_ptr<Context> ctx_;
  std::shared_ptr<const Group> group_;  // null on the world communicator
};

template <typename T>
void Communicator::bcast(std::vector<T>& data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  check_peer(root);
  const int p = size();
  if (p == 1) return;

  if (ctx_->collective_algo() == CollectiveAlgo::Flat) {
    // One-level fan-out: root posts p-1 copies. Benchmark baseline (and
    // lowest latency for tiny jobs); never chosen by Auto because only
    // the Context-wide setting keeps all ranks consistent — receivers
    // cannot see the payload size a size-aware switch would need.
    PARSVD_TRACE_SCOPE("comm.bcast.flat");
    if (rank_ == root) {
      for (int dst = 0; dst < p; ++dst) {
        if (dst == root) continue;
        std::vector<std::byte> payload(data.size() * sizeof(T));
        std::memcpy(payload.data(), data.data(), payload.size());
        post_scoped(dst, tags::kBcast, std::move(payload));
      }
    } else {
      const std::vector<std::byte> payload = wait_scoped(root, tags::kBcast);
      data.resize(payload.size() / sizeof(T));
      std::memcpy(data.data(), payload.data(), payload.size());
    }
    return;
  }

  // Classic binomial tree (shared schedule math in pmpi/topology.hpp):
  // receive from the parent — vrank with its lowest set bit cleared —
  // then fan out to the children in descending mask order, so big
  // subtrees get the payload first and their forwarding overlaps the
  // small sends. Ranks are rotated so the tree is rooted at `root`.
  PARSVD_TRACE_SCOPE("comm.bcast.tree");
  const int vrank = (rank_ - root + p) % p;
  if (vrank != 0) {
    const int parent = (topology::binomial_parent(vrank) + root) % p;
    const std::vector<std::byte> payload = wait_scoped(parent, tags::kBcast);
    data.resize(payload.size() / sizeof(T));
    std::memcpy(data.data(), payload.data(), payload.size());
  }
  for (const int child_v :
       topology::binomial_children(vrank, p, /*ascending=*/false)) {
    const int child = (child_v + root) % p;
    std::vector<std::byte> payload(data.size() * sizeof(T));
    std::memcpy(payload.data(), data.data(), payload.size());
    post_scoped(child, tags::kBcast, std::move(payload));
  }
}

template <typename T>
std::vector<T> Communicator::gatherv(std::span<const T> local, int root,
                                     std::vector<std::size_t>* counts) {
  static_assert(std::is_trivially_copyable_v<T>);
  check_peer(root);
  std::vector<std::byte> payload(local.size_bytes());
  std::memcpy(payload.data(), local.data(), local.size_bytes());
  std::vector<std::vector<std::byte>> parts =
      gather_bytes_impl(std::move(payload), root);
  if (rank_ != root) return {};
  if (counts) counts->assign(static_cast<std::size_t>(size()), 0);
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<T> out(total / sizeof(T));
  std::byte* cursor = reinterpret_cast<std::byte*>(out.data());
  for (int src = 0; src < size(); ++src) {
    const auto& part = parts[static_cast<std::size_t>(src)];
    if (counts) (*counts)[static_cast<std::size_t>(src)] = part.size() / sizeof(T);
    if (part.empty()) continue;
    std::memcpy(cursor, part.data(), part.size());
    cursor += part.size();
  }
  return out;
}

/// Launch `size` ranks (threads), each running fn(comm). Joins all ranks;
/// the first rank exception (by rank order) is rethrown in the caller.
/// RankKilledError (an injected fault-plan death) is NOT rethrown: the
/// dead rank is recorded in Context::dead_ranks() and the survivors'
/// outcome decides the job's fate — degraded completion returns normally,
/// a stuck survivor surfaces as RankDeadError/CommTimeout.
void run(int size, const std::function<void(Communicator&)>& fn);

/// As `run`, but also returns the context for post-mortem statistics
/// (communication volume, message counts, retransmits, dead ranks).
std::shared_ptr<Context> run_with_stats(
    int size, const std::function<void(Communicator&)>& fn);

/// Run ranks on a caller-configured context (fault plan, timeouts,
/// reliability toggle). The context must be freshly constructed with the
/// desired size. Returns `ctx` for post-mortem inspection.
std::shared_ptr<Context> run_on(std::shared_ptr<Context> ctx,
                                const std::function<void(Communicator&)>& fn);

}  // namespace parsvd::pmpi
