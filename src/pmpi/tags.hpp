// Tag-namespace registry: every wire tag used inside the library lives
// here, in named reserved ranges, so no two protocols can collide by
// picking the same ad-hoc constant.
//
// Layout of the tag space:
//   * negative tags — internal collective protocols. The public
//     point-to-point API rejects negative user tags, so collective
//     traffic can never be intercepted by (or mistaken for) user
//     messages on the same channel.
//   * [100, 1024) — reserved solver protocol ranges, one kRangeWidth-wide
//     band per protocol. Level-indexed protocols (the TSQR reduction
//     tree) get a whole band so `base + level` arithmetic stays inside
//     their reservation by construction.
//   * [1024, ...) — application space: user code that needs stable tags
//     alongside the solvers should start at kUserBase.
//   * (-inf, -kGroupScopedBase] — group-scoped bands. Every communicator
//     group minted by Context::group_for owns one kGroupSpan-wide band
//     deep in negative space; group_scope(id, tag) maps a group's whole
//     local tag space (collectives, solver bands, user tags below
//     kGroupUserLimit) into its band. The bands are pairwise disjoint
//     and sit below every world collective tag, and world user tags are
//     non-negative, so a group's wire traffic can never collide with the
//     world communicator's or with a sibling group's.
//
// Debug builds additionally enforce the channel discipline at runtime:
// Context::register_irecv throws if two outstanding non-blocking
// receives ever share a (dest, src, tag) channel.
#pragma once

namespace parsvd::pmpi::tags {

// ----------------------------------------------------- collective tags
inline constexpr int kBcast = -2;       // binomial-tree / flat broadcast
inline constexpr int kGather = -3;      // flat gather (root loop)
inline constexpr int kScatter = -4;     // scatter_rows
inline constexpr int kReduce = -5;      // flat reduce (root loop)
inline constexpr int kFtGather = -6;    // fault-tolerant flat gather
inline constexpr int kFtBcast = -7;     // fault-tolerant flat bcast
inline constexpr int kGatherTree = -8;  // binomial-tree gather frames
inline constexpr int kReduceTree = -9;  // binomial-tree reduce partials
inline constexpr int kAllreduce = -10;  // recursive-doubling exchange
inline constexpr int kBarrier = -11;    // message-based subgroup barrier

// ------------------------------------------------ solver protocol bands
/// Width of one reserved band. 64 covers every level-indexed protocol:
/// a binomial tree over int ranks has at most 31 levels.
inline constexpr int kRangeWidth = 64;

inline constexpr int kTsqrUpBase = 100;
inline constexpr int kTsqrDownBase = kTsqrUpBase + kRangeWidth;
inline constexpr int kApmosGatherBase = kTsqrDownBase + kRangeWidth;

/// First tag applications should use for their own traffic.
inline constexpr int kUserBase = 1024;

/// TSQR tree up-sweep: R factors flowing toward rank 0, one tag per
/// tree level so a rank's pre-posted receives are distinct channels.
constexpr int tsqr_up(int level) { return kTsqrUpBase + level; }

/// TSQR tree down-sweep: Q transforms flowing back toward the leaves.
constexpr int tsqr_down(int level) { return kTsqrDownBase + level; }

/// APMOS Stage-3 gather of per-rank W blocks (overlapped at root with
/// the Stage-2 small SVD).
constexpr int apmos_w() { return kApmosGatherBase; }

static_assert(kApmosGatherBase + kRangeWidth <= kUserBase,
              "solver tag bands overflow into application space");

// ------------------------------------------------- group tag namespace
// Every communicator group's wire tags are its local tags relocated into
// a private band: group_scope(id, t) = -(kGroupScopedBase
//                                        + (id-1)*kGroupSpan
//                                        + (t + kGroupTagBias)).
// The bias shifts the (negative) collective tags to non-negative band
// offsets, so one band holds a group's complete local tag space:
// collectives, the solver protocol bands, and user tags below
// kGroupUserLimit. All scoped tags are <= -kGroupScopedBase, far below
// kBarrier (the deepest world collective), and world user tags are
// non-negative — so no scoped tag can collide with world traffic, and
// distinct group ids land in disjoint bands by construction.
//
// Production code NEVER calls group_scope directly: Communicator scopes
// every post/wait of a group communicator internally, and the
// `group-tag` lint rule bans hand-rolled scoping arithmetic outside
// src/pmpi and the src/verify model (which must mirror the wire tags).

/// Width of one group's scoped band. Must cover the bias, the solver
/// bands and a useful slice of user tag space.
inline constexpr int kGroupSpan = 4096;
/// Shift that maps the deepest internal collective tag to band offset 0.
inline constexpr int kGroupTagBias = 16;
/// |tag| at which the first group band (id 1) starts.
inline constexpr int kGroupScopedBase = 1 << 20;
/// Group communicators reject user tags at or above this (the scoped
/// band cannot hold them); world communicators have no upper limit.
inline constexpr int kGroupUserLimit = kGroupSpan - kGroupTagBias;
/// Group ids a Context can mint before scoped tags leave int range.
inline constexpr int kMaxGroups =
    (2147483647 - kGroupScopedBase) / kGroupSpan - 1;

/// True for wire tags inside some group's scoped band.
constexpr bool is_group_scoped(int tag) { return tag <= -kGroupScopedBase; }

/// Relocate a group-local tag into group `group_id`'s private band.
/// Requires group_id in [1, kMaxGroups] and tag in
/// [-kGroupTagBias, kGroupUserLimit).
constexpr int group_scope(int group_id, int tag) {
  return -(kGroupScopedBase + (group_id - 1) * kGroupSpan +
           (tag + kGroupTagBias));
}

/// Inverse of group_scope: the group id owning a scoped wire tag.
constexpr int scoped_group(int tag) {
  return (-tag - kGroupScopedBase) / kGroupSpan + 1;
}

/// Inverse of group_scope: the group-local tag behind a scoped wire tag.
constexpr int unscoped(int tag) {
  return (-tag - kGroupScopedBase) % kGroupSpan - kGroupTagBias;
}

static_assert(kBarrier > -kGroupTagBias,
              "collective tags must fit above the group band bias");
static_assert(kApmosGatherBase + kRangeWidth <= kGroupUserLimit,
              "solver tag bands must fit inside one group band");
static_assert(kUserBase < kGroupUserLimit,
              "group communicators must accept tags at kUserBase");
static_assert(!is_group_scoped(kBarrier) && !is_group_scoped(kUserBase),
              "world tags must never read as group-scoped");
static_assert(is_group_scoped(group_scope(1, kBcast)) &&
                  is_group_scoped(group_scope(kMaxGroups, kGroupUserLimit - 1)),
              "every band slot must read as group-scoped");
static_assert(scoped_group(group_scope(7, kAllreduce)) == 7 &&
                  unscoped(group_scope(7, kAllreduce)) == kAllreduce,
              "group_scope must round-trip collective tags");
static_assert(scoped_group(group_scope(3, kTsqrUpBase + 5)) == 3 &&
                  unscoped(group_scope(3, kTsqrUpBase + 5)) == kTsqrUpBase + 5,
              "group_scope must round-trip solver band tags");
static_assert(group_scope(1, kGroupUserLimit - 1) >
                  group_scope(2, -kGroupTagBias),
              "sibling group bands must be disjoint");

}  // namespace parsvd::pmpi::tags
