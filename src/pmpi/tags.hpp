// Tag-namespace registry: every wire tag used inside the library lives
// here, in named reserved ranges, so no two protocols can collide by
// picking the same ad-hoc constant.
//
// Layout of the tag space:
//   * negative tags — internal collective protocols. The public
//     point-to-point API rejects negative user tags, so collective
//     traffic can never be intercepted by (or mistaken for) user
//     messages on the same channel.
//   * [100, 1024) — reserved solver protocol ranges, one kRangeWidth-wide
//     band per protocol. Level-indexed protocols (the TSQR reduction
//     tree) get a whole band so `base + level` arithmetic stays inside
//     their reservation by construction.
//   * [1024, ...) — application space: user code that needs stable tags
//     alongside the solvers should start at kUserBase.
//
// Debug builds additionally enforce the channel discipline at runtime:
// Context::register_irecv throws if two outstanding non-blocking
// receives ever share a (dest, src, tag) channel.
#pragma once

namespace parsvd::pmpi::tags {

// ----------------------------------------------------- collective tags
inline constexpr int kBcast = -2;       // binomial-tree / flat broadcast
inline constexpr int kGather = -3;      // flat gather (root loop)
inline constexpr int kScatter = -4;     // scatter_rows
inline constexpr int kReduce = -5;      // flat reduce (root loop)
inline constexpr int kFtGather = -6;    // fault-tolerant flat gather
inline constexpr int kFtBcast = -7;     // fault-tolerant flat bcast
inline constexpr int kGatherTree = -8;  // binomial-tree gather frames
inline constexpr int kReduceTree = -9;  // binomial-tree reduce partials
inline constexpr int kAllreduce = -10;  // recursive-doubling exchange

// ------------------------------------------------ solver protocol bands
/// Width of one reserved band. 64 covers every level-indexed protocol:
/// a binomial tree over int ranks has at most 31 levels.
inline constexpr int kRangeWidth = 64;

inline constexpr int kTsqrUpBase = 100;
inline constexpr int kTsqrDownBase = kTsqrUpBase + kRangeWidth;
inline constexpr int kApmosGatherBase = kTsqrDownBase + kRangeWidth;

/// First tag applications should use for their own traffic.
inline constexpr int kUserBase = 1024;

/// TSQR tree up-sweep: R factors flowing toward rank 0, one tag per
/// tree level so a rank's pre-posted receives are distinct channels.
constexpr int tsqr_up(int level) { return kTsqrUpBase + level; }

/// TSQR tree down-sweep: Q transforms flowing back toward the leaves.
constexpr int tsqr_down(int level) { return kTsqrDownBase + level; }

/// APMOS Stage-3 gather of per-rank W blocks (overlapped at root with
/// the Stage-2 small SVD).
constexpr int apmos_w() { return kApmosGatherBase; }

static_assert(kApmosGatherBase + kRangeWidth <= kUserBase,
              "solver tag bands overflow into application space");

}  // namespace parsvd::pmpi::tags
