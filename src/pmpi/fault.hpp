// Deterministic fault injection for the pmpi runtime.
//
// A FaultPlan is an immutable, seeded schedule of communication faults
// evaluated against per-rank operation counters: every post()/wait()/
// barrier() a rank performs advances its counter, and the plan decides —
// as a pure function of (seed, rank, op) — whether that operation is
// faulted.  Because each rank's operation sequence is deterministic, the
// same plan reproduces the same faults run after run, regardless of
// thread interleaving.  Two layers compose:
//
//   * explicit events: exact (rank, op) -> fault, for regression tests
//     that must hit one specific message;
//   * probabilistic rates: a seeded hash draw per operation, for chaos
//     sweeps (FaultPlan::chaos) across hundreds of seeds.
//
// Message faults (evaluated at the sending rank's post()):
//   Drop      — the payload never reaches the destination mailbox; the
//               original is kept in the retransmit log for recovery.
//   Delay     — delivery is deferred by `param` milliseconds.
//   Duplicate — the payload is enqueued twice (same sequence number);
//               the receiver's envelope layer discards the duplicate.
//   Truncate  — `param` bytes are chopped off the delivered copy; the
//               checksum mismatch triggers a retransmit.
// Rank faults (evaluated at any operation):
//   Kill      — the rank is marked dead and RankKilledError is thrown
//               out of its rank function; peers observe the death as
//               typed RankDeadError (or exclude it in degraded mode).
//
// Plans can also be loaded from the environment (PARSVD_FAULT_* — see
// from_env), so any binary can be run under chaos without recompiling.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace parsvd::pmpi {

enum class FaultKind { Drop, Delay, Duplicate, Truncate, Kill };

const char* to_string(FaultKind kind);

/// One injected fault: what to do and its parameter (Delay: milliseconds,
/// Truncate: bytes removed from the delivered copy).
struct FaultDecision {
  FaultKind kind;
  std::uint32_t param = 0;
};

class FaultPlan {
 public:
  /// Empty plan: never faults anything.
  FaultPlan() = default;

  /// Probabilistic chaos plan: every operation draws once from a seeded
  /// hash; the rates partition the unit interval. Kill draws use an
  /// independent stream so enabling kills does not reshuffle the message
  /// faults of the same seed.
  static FaultPlan chaos(std::uint64_t seed, double drop_rate,
                         double delay_rate, double duplicate_rate,
                         double truncate_rate, double kill_rate = 0.0);

  /// Build a plan from PARSVD_FAULT_* environment variables:
  ///   PARSVD_FAULT_SEED       hash seed (default 0)
  ///   PARSVD_FAULT_DROP       drop rate in [0,1]        (default 0)
  ///   PARSVD_FAULT_DELAY     delay rate in [0,1]        (default 0)
  ///   PARSVD_FAULT_DUP        duplicate rate in [0,1]   (default 0)
  ///   PARSVD_FAULT_TRUNC      truncate rate in [0,1]    (default 0)
  ///   PARSVD_FAULT_KILL       kill rate in [0,1]        (default 0)
  ///   PARSVD_FAULT_DELAY_MS   delay parameter           (default 2)
  ///   PARSVD_FAULT_KILL_RANK + PARSVD_FAULT_KILL_AT  explicit kill
  ///   PARSVD_FAULT_PROTECT_ROOT  never kill rank 0     (default true)
  /// Returns an empty plan when no variable is set.
  static FaultPlan from_env();

  // ------------------------------------------------------------- builders

  /// Kill `rank` when its operation counter reaches `at_op`.
  FaultPlan& kill_rank(int rank, std::uint64_t at_op);

  /// Inject one explicit message fault on `rank`'s `at_op`-th operation.
  FaultPlan& inject(int rank, std::uint64_t at_op, FaultKind kind,
                    std::uint32_t param = 0);

  /// Exempt `rank` from kills (probabilistic and explicit). Degraded-mode
  /// tests protect the root: its death is unrecoverable by design.
  FaultPlan& protect_rank(int rank);

  // -------------------------------------------------------------- queries
  // Pure functions of the immutable plan — safe to call from all rank
  // threads concurrently.

  bool empty() const;

  /// True if any schedule (explicit or probabilistic) can kill a rank.
  bool can_kill() const;

  /// Message fault for the operation `op` performed by sender `src_rank`,
  /// if any.
  std::optional<FaultDecision> on_message(int src_rank,
                                          std::uint64_t op) const;

  /// Should `rank` die at operation `op`?
  bool kills(int rank, std::uint64_t op) const;

  /// Delay parameter used by probabilistic Delay faults (milliseconds).
  std::uint32_t delay_ms = 2;

 private:
  bool is_protected(int rank) const;

  struct Event {
    int rank;
    std::uint64_t op;
    FaultKind kind;
    std::uint32_t param;
  };
  std::vector<Event> events_;
  std::vector<int> protected_ranks_;
  std::uint64_t seed_ = 0;
  double drop_ = 0.0, delay_ = 0.0, dup_ = 0.0, trunc_ = 0.0, kill_ = 0.0;
  bool probabilistic_ = false;
};

/// Fast 64-bit payload checksum used by the reliability envelope: four
/// independent multiply-xor lanes so the hot loop pipelines at close to
/// memory bandwidth (the <3% zero-fault overhead budget in BENCH_fault).
std::uint64_t payload_checksum(const void* data, std::size_t size);

}  // namespace parsvd::pmpi
