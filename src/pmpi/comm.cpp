#include "pmpi/comm.hpp"

#include <algorithm>
#include <thread>

#include "support/log.hpp"

namespace parsvd::pmpi {

// ---------------------------------------------------------------- Context

Context::Context(int size) : size_(size) {
  PARSVD_REQUIRE(size >= 1, "communicator size must be >= 1");
  boxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
  bytes_by_rank_.assign(static_cast<std::size_t>(size), 0);
}

void Context::post(int src, int dest, int tag, std::vector<std::byte> payload) {
  PARSVD_REQUIRE(dest >= 0 && dest < size_, "post: dest out of range");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    bytes_by_rank_[static_cast<std::size_t>(src)] += payload.size();
    ++messages_;
  }
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(PendingMessage{src, tag, std::move(payload)});
  }
  box.cv.notify_all();
}

std::vector<std::byte> Context::wait(int dest, int src, int tag) {
  PARSVD_REQUIRE(dest >= 0 && dest < size_, "wait: dest out of range");
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    // FIFO per (src, tag): take the first matching message in arrival
    // order, the ordering guarantee MPI provides per channel.
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [src, tag](const PendingMessage& m) {
                             return m.src == src && m.tag == tag;
                           });
    if (it != box.queue.end()) {
      std::vector<std::byte> payload = std::move(it->payload);
      box.queue.erase(it);
      return payload;
    }
    if (aborted()) {
      throw CommError("communicator aborted while waiting for a message");
    }
    box.cv.wait(lock);
  }
}

void Context::abort_job() {
  log::warn("pmpi: aborting job of ", size_, " ranks after a rank failure");
  aborted_.store(true, std::memory_order_release);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    ++barrier_generation_;  // release current waiters
    barrier_cv_.notify_all();
  }
}

void Context::barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_waiting_ == size_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [this, my_generation] {
    return barrier_generation_ != my_generation || aborted();
  });
  if (aborted()) throw CommError("communicator aborted during barrier");
}

std::uint64_t Context::total_bytes() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::uint64_t sum = 0;
  for (std::uint64_t b : bytes_by_rank_) sum += b;
  return sum;
}

std::uint64_t Context::rank_bytes(int rank) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  PARSVD_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
  return bytes_by_rank_[static_cast<std::size_t>(rank)];
}

std::uint64_t Context::total_messages() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return messages_;
}

// ----------------------------------------------------------- Communicator

Communicator::Communicator(int rank, std::shared_ptr<Context> ctx)
    : rank_(rank), ctx_(std::move(ctx)) {
  PARSVD_REQUIRE(ctx_ != nullptr, "null context");
  PARSVD_REQUIRE(rank_ >= 0 && rank_ < ctx_->size(), "rank out of range");
}

void Communicator::send_bytes(std::vector<std::byte> payload, int dest, int tag) {
  ctx_->post(rank_, dest, tag, std::move(payload));
}

std::vector<std::byte> Communicator::recv_bytes(int src, int tag) {
  return ctx_->wait(rank_, src, tag);
}

namespace {

std::vector<std::byte> pack_matrix(const Matrix& m) {
  const std::int64_t header[2] = {static_cast<std::int64_t>(m.rows()),
                                  static_cast<std::int64_t>(m.cols())};
  std::vector<std::byte> payload(sizeof(header) +
                                 static_cast<std::size_t>(m.size()) * sizeof(double));
  std::memcpy(payload.data(), header, sizeof(header));
  std::memcpy(payload.data() + sizeof(header), m.data(),
              static_cast<std::size_t>(m.size()) * sizeof(double));
  return payload;
}

Matrix unpack_matrix(const std::vector<std::byte>& payload) {
  PARSVD_REQUIRE(payload.size() >= 2 * sizeof(std::int64_t),
                 "matrix payload too short");
  std::int64_t header[2];
  std::memcpy(header, payload.data(), sizeof(header));
  Matrix m(static_cast<Index>(header[0]), static_cast<Index>(header[1]));
  const std::size_t body = static_cast<std::size_t>(m.size()) * sizeof(double);
  PARSVD_REQUIRE(payload.size() == sizeof(header) + body,
                 "matrix payload size mismatch");
  std::memcpy(m.data(), payload.data() + sizeof(header), body);
  return m;
}

}  // namespace

void Communicator::send_matrix(const Matrix& m, int dest, int tag) {
  check_peer(dest);
  check_tag(tag);
  send_bytes(pack_matrix(m), dest, tag);
}

Matrix Communicator::recv_matrix(int src, int tag) {
  check_peer(src);
  check_tag(tag);
  return unpack_matrix(recv_bytes(src, tag));
}

void Communicator::bcast_matrix(Matrix& m, int root) {
  std::vector<std::byte> payload;
  if (rank_ == root) payload = pack_matrix(m);
  bcast(payload, root);
  if (rank_ != root) m = unpack_matrix(payload);
}

void Communicator::bcast_double(double& value, int root) {
  std::vector<double> buf{value};
  bcast(buf, root);
  value = buf.at(0);
}

void Communicator::bcast_index(Index& value, int root) {
  std::vector<std::int64_t> buf{static_cast<std::int64_t>(value)};
  bcast(buf, root);
  value = static_cast<Index>(buf.at(0));
}

std::vector<Matrix> Communicator::gather_matrices(const Matrix& local, int root) {
  check_peer(root);
  if (rank_ != root) {
    send_bytes(pack_matrix(local), root, kTagGather);
    return {};
  }
  std::vector<Matrix> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (int src = 0; src < size(); ++src) {
    if (src == root) {
      out.push_back(local);
    } else {
      out.push_back(unpack_matrix(ctx_->wait(rank_, src, kTagGather)));
    }
  }
  return out;
}

std::vector<double> Communicator::allgather_double(double value) {
  std::vector<double> local{value};
  std::vector<double> all = gatherv<double>(local, 0);
  bcast(all, 0);
  return all;
}

std::vector<Index> Communicator::allgather_index(Index value) {
  std::vector<std::int64_t> local{static_cast<std::int64_t>(value)};
  std::vector<std::int64_t> all = gatherv<std::int64_t>(local, 0);
  bcast(all, 0);
  std::vector<Index> out(all.size());
  std::transform(all.begin(), all.end(), out.begin(),
                 [](std::int64_t v) { return static_cast<Index>(v); });
  return out;
}

Matrix Communicator::scatter_rows(const Matrix& full,
                                  std::span<const Index> rows_per_rank,
                                  int root) {
  check_peer(root);
  PARSVD_REQUIRE(static_cast<int>(rows_per_rank.size()) == size(),
                 "scatter_rows: need one row count per rank");
  if (rank_ == root) {
    Index total = 0;
    for (Index r : rows_per_rank) total += r;
    PARSVD_REQUIRE(total == full.rows(), "scatter_rows: counts don't sum to rows");
    Index offset = 0;
    Matrix mine;
    for (int dst = 0; dst < size(); ++dst) {
      const Index nrows = rows_per_rank[static_cast<std::size_t>(dst)];
      Matrix block = full.block(offset, 0, nrows, full.cols());
      offset += nrows;
      if (dst == root) {
        mine = std::move(block);
      } else {
        send_bytes(pack_matrix(block), dst, kTagScatter);
      }
    }
    return mine;
  }
  return unpack_matrix(ctx_->wait(rank_, root, kTagScatter));
}

namespace {

void apply_op(Op op, std::span<double> acc, std::span<const double> incoming) {
  PARSVD_REQUIRE(acc.size() == incoming.size(), "reduce length mismatch");
  switch (op) {
    case Op::Sum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += incoming[i];
      return;
    case Op::Max:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], incoming[i]);
      return;
    case Op::Min:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], incoming[i]);
      return;
  }
  throw ConfigError("unknown reduction op");
}

}  // namespace

void Communicator::reduce(std::span<double> data, Op op, int root) {
  check_peer(root);
  if (rank_ != root) {
    std::vector<std::byte> payload(data.size_bytes());
    std::memcpy(payload.data(), data.data(), data.size_bytes());
    send_bytes(std::move(payload), root, kTagReduce);
    return;
  }
  // Accumulate contributions in a fixed rank order so the result is
  // deterministic run-to-run (floating-point reduction order matters).
  for (int src = 0; src < size(); ++src) {
    if (src == root) continue;
    const std::vector<std::byte> payload = ctx_->wait(rank_, src, kTagReduce);
    PARSVD_REQUIRE(payload.size() == data.size_bytes(),
                   "reduce: contribution size mismatch");
    std::span<const double> incoming(
        reinterpret_cast<const double*>(payload.data()), data.size());
    apply_op(op, data, incoming);
  }
}

void Communicator::allreduce(std::span<double> data, Op op) {
  reduce(data, op, 0);
  std::vector<double> buf(data.begin(), data.end());
  bcast(buf, 0);
  std::copy(buf.begin(), buf.end(), data.begin());
}

double Communicator::allreduce_scalar(double value, Op op) {
  double buf[1] = {value};
  allreduce(std::span<double>(buf, 1), op);
  return buf[0];
}

// ------------------------------------------------------------------ run

std::shared_ptr<Context> run_with_stats(
    int size, const std::function<void(Communicator&)>& fn) {
  auto ctx = std::make_shared<Context>(size);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([r, &fn, ctx, &errors] {
      try {
        Communicator comm(r, ctx);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Wake peers blocked on messages this rank will never send.
        ctx->abort_job();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the root cause: secondary CommErrors are just ranks woken by
  // abort_job after a peer failed.
  std::exception_ptr first;
  for (const auto& err : errors) {
    if (!err) continue;
    if (!first) first = err;
    try {
      std::rethrow_exception(err);
    } catch (const CommError&) {
      continue;
    } catch (...) {
      first = err;
      break;
    }
  }
  if (first) std::rethrow_exception(first);
  return ctx;
}

void run(int size, const std::function<void(Communicator&)>& fn) {
  run_with_stats(size, fn);
}

}  // namespace parsvd::pmpi
