#include "pmpi/comm.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <thread>

#include "support/env.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace parsvd::pmpi {

// ---------------------------------------------------------------- Context

Context::Context(int size)
    : size_(size),
      op_counters_(static_cast<std::size_t>(std::max(size, 1))),
      dead_(static_cast<std::size_t>(std::max(size, 1))) {
  PARSVD_REQUIRE(size >= 1, "communicator size must be >= 1");
  boxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
  messages_total_ = &metrics_.counter("comm.messages");
  bytes_total_ = &metrics_.counter("comm.bytes");
  bytes_by_rank_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    bytes_by_rank_.push_back(
        &metrics_.counter("comm.rank" + std::to_string(r) + ".bytes"));
  }
  payload_hist_ = &metrics_.histogram("comm.payload_bytes");
  retransmits_ = &metrics_.counter("comm.retransmits");
  faults_injected_ = &metrics_.counter("comm.faults_injected");
  timeouts_ = &metrics_.counter("comm.timeouts");
  timeout_retries_ = &metrics_.counter("comm.timeout_retries");
  wait_timeout_ = std::chrono::milliseconds(
      std::max<std::int64_t>(0, env::get_int("PARSVD_FAULT_TIMEOUT_MS", 0)));
  max_retries_ = static_cast<int>(
      std::max<std::int64_t>(0, env::get_int("PARSVD_FAULT_RETRIES", 3)));
  const std::int64_t max_mb = env::get_int("PARSVD_MAX_PAYLOAD_MB", 0);
  if (max_mb > 0) max_payload_ = static_cast<std::uint64_t>(max_mb) << 20;
  const std::string algo = env::get_string("PARSVD_COMM_ALGO", "auto");
  if (algo == "flat") {
    collective_algo_.store(CollectiveAlgo::Flat, std::memory_order_relaxed);
  } else if (algo == "tree") {
    collective_algo_.store(CollectiveAlgo::Tree, std::memory_order_relaxed);
  } else if (algo != "auto") {
    throw ConfigError("PARSVD_COMM_ALGO must be auto, flat or tree (got '" +
                      algo + "')");
  }
  eager_bytes_.store(
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, env::get_int("PARSVD_COMM_EAGER_BYTES",
                          static_cast<std::int64_t>(std::uint64_t{1} << 14)))),
      std::memory_order_relaxed);
  tree_min_ranks_.store(
      static_cast<int>(std::max<std::int64_t>(
          2, env::get_int("PARSVD_COMM_TREE_MIN_RANKS", 8))),
      std::memory_order_relaxed);
  FaultPlan env_plan = FaultPlan::from_env();
  if (!env_plan.empty()) set_fault_plan(std::move(env_plan));
}

Context::~Context() {
  watchdog_stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_cv_.notify_all();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

void Context::ensure_watchdog() {
  if (watchdog_started_.load(std::memory_order_acquire)) return;
  // Called with a mailbox mutex held; safe because the watchdog never
  // holds watchdog_mu_ while taking a mailbox mutex.
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  if (watchdog_started_.load(std::memory_order_relaxed)) return;
  watchdog_ = std::thread([this] { watchdog_loop(); });
  watchdog_started_.store(true, std::memory_order_release);
}

void Context::watchdog_loop() {
  obs::set_thread_identity(-1, 90, "watchdog");
  // Low-frequency broadcaster backing bounded wait() deadlines: sleeping
  // receivers use plain (untimed) cv waits and rely on these periodic
  // wakes to notice an expired deadline. The tick bounds how late a
  // CommTimeout can fire, and one shared timer replaces a per-sleep
  // armed timer on every blocking receive.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock, kWatchdogTick);
    }
    if (watchdog_stop_.load(std::memory_order_acquire)) return;
    watchdog_ticks_.fetch_add(1, std::memory_order_relaxed);
    for (auto& box : boxes_) {
      std::lock_guard<std::mutex> lock(box->mu);
      box->cv.notify_all();
    }
  }
}

void Context::set_fault_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  plan_active_ = !plan_.empty();
  plan_can_kill_ = plan_active_ && plan_.can_kill();
  if (plan_active_) {
    // Faulted messages need the envelope to be detectable, and a silent
    // drop must become a typed timeout rather than a hang.
    set_reliability(true);
    if (wait_timeout_.count() == 0) {
      wait_timeout_ = std::chrono::milliseconds(2000);
    }
  }
}

void Context::set_wait_timeout(std::chrono::milliseconds timeout) {
  wait_timeout_ = std::max(timeout, std::chrono::milliseconds(0));
}

void Context::set_max_retries(int retries) {
  max_retries_ = std::max(retries, 0);
}

std::uint64_t Context::account_op(int rank) {
  if (rank < 0) return 0;
  const std::uint64_t op = op_counters_[static_cast<std::size_t>(rank)]
                               .fetch_add(1, std::memory_order_relaxed);
  if (plan_can_kill_ && plan_.kills(rank, op)) {
    faults_injected_->add(1);
    PARSVD_TRACE_INSTANT("fault.kill");
    log::warn("pmpi: fault plan kills rank ", rank, " at op ", op);
    mark_dead(rank);
    throw RankKilledError("rank " + std::to_string(rank) +
                          " killed by fault plan at op " + std::to_string(op));
  }
  return op;
}

void Context::mark_dead(int rank) {
  if (rank < 0 || rank >= size_) return;
  if (dead_[static_cast<std::size_t>(rank)].exchange(
          true, std::memory_order_acq_rel)) {
    return;
  }
  dead_count_.fetch_add(1, std::memory_order_acq_rel);
  log::warn("pmpi: rank ", rank, " is dead (", alive_count(), " of ", size_,
            " ranks survive)");
  // Wake every blocked wait() so peers observing the death convert it
  // into RankDeadError / degraded exclusion instead of sleeping on.
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  // A barrier no longer waits for the dead rank: release the current
  // generation if the survivors are all present.
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    if (barrier_waiting_ > 0 &&
        barrier_waiting_ + dead_count_.load(std::memory_order_acquire) >=
            size_) {
      barrier_waiting_ = 0;
      ++barrier_generation_;
    }
    barrier_cv_.notify_all();
  }
}

std::vector<int> Context::dead_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < size_; ++r) {
    if (is_dead(r)) out.push_back(r);
  }
  return out;
}

void Context::post(int src, int dest, int tag, std::vector<std::byte> payload) {
  PARSVD_REQUIRE(dest >= 0 && dest < size_, "post: dest out of range");
  if (payload.size() > max_payload_) {
    throw CommError("pmpi: payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the per-message cap of " +
                    std::to_string(max_payload_) + " bytes");
  }
  const std::uint64_t op = account_op(src);
  messages_total_->add(1);
  bytes_total_->add(payload.size());
  bytes_by_rank_[static_cast<std::size_t>(src)]->add(payload.size());
  payload_hist_->record(payload.size());
  const bool rel = reliability();
  const bool inject = plan_active_ && rel;
  const std::uint64_t checksum =
      rel ? payload_checksum(payload.data(), payload.size()) : 0;
  std::optional<FaultDecision> fault;
  if (inject) fault = plan_.on_message(src, op);

  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    const ChannelKey key{src, tag};
    const std::uint64_t seq = rel ? box.send_seq[key]++ : 0;
    PendingMessage msg{src,      tag, seq, checksum, Clock::time_point{},
                       std::move(payload)};
    log::trace("pmpi: post src=", src, " dest=", dest, " tag=", tag,
               " seq=", seq, " bytes=", msg.payload.size());
    if (fault) {
      faults_injected_->add(1);
      PARSVD_TRACE_INSTANT("fault.inject");
      log::debug("pmpi: inject ", to_string(fault->kind), " src=", src,
                 " dest=", dest, " tag=", tag, " seq=", seq);
      switch (fault->kind) {
        case FaultKind::Drop:
          // Lost on the wire; the original stays in the retransmit log
          // until the receiver recovers (NACK-equivalent) or acks past it.
          box.log[key][seq] = std::move(msg.payload);
          break;
        case FaultKind::Truncate: {
          box.log[key][seq] = msg.payload;
          const std::size_t cut =
              std::min<std::size_t>(msg.payload.size(), fault->param);
          msg.payload.resize(msg.payload.size() - cut);
          box.queue.push_back(std::move(msg));
          break;
        }
        case FaultKind::Duplicate: {
          PendingMessage copy = msg;
          box.queue.push_back(std::move(copy));
          box.queue.push_back(std::move(msg));
          break;
        }
        case FaultKind::Delay:
          msg.deliver_after =
              Clock::now() + std::chrono::milliseconds(fault->param);
          box.queue.push_back(std::move(msg));
          break;
        case FaultKind::Kill:
          // Kills are evaluated in account_op, never as a message fault.
          box.queue.push_back(std::move(msg));
          break;
      }
    } else {
      box.queue.push_back(std::move(msg));
    }
  }
  box.cv.notify_all();
}

bool Context::scan_channel_locked(Mailbox& box, int dest, int src, int tag,
                                  std::vector<std::byte>* out,
                                  Clock::time_point* next_deliverable) {
  const ChannelKey key{src, tag};
  const bool rel = reliability();
  // Only this rank's thread consumes from this mailbox, so the expected
  // sequence number is stable for the duration of the scan.
  const std::uint64_t expected = rel ? box.recv_seq[key] : 0;

  // Consume `payload` as the channel's next message: advance the
  // expected sequence number and drop acknowledged retransmit copies.
  const auto consume = [&](std::vector<std::byte> payload) {
    log::trace("pmpi: consume dest=", dest, " src=", src, " tag=", tag,
               " seq=", expected, " bytes=", payload.size());
    if (rel) {
      box.recv_seq[key] = expected + 1;
      auto chan = box.log.find(key);
      if (chan != box.log.end()) {
        chan->second.erase(chan->second.begin(),
                           chan->second.upper_bound(expected));
        if (chan->second.empty()) box.log.erase(chan);
      }
    }
    *out = std::move(payload);
  };

  // Fetched lazily: only delayed-fault messages carry a non-epoch
  // deliver_after, so the scan normally needs no clock read at all.
  Clock::time_point now{};
  // NOTE: the stale-duplicate erase below invalidates deque end()
  // iterators, so the candidate must be tracked with a flag rather
  // than compared against a sentinel captured before the scan.
  auto it = box.queue.end();
  bool found = false;
  for (auto cur = box.queue.begin(); cur != box.queue.end();) {
    if (cur->src != src || cur->tag != tag) {
      ++cur;
      continue;
    }
    if (rel && cur->seq < expected) {
      // Stale duplicate of an already-consumed message.
      log::trace("pmpi: dropping duplicate seq=", cur->seq, " src=", src,
                 " dest=", dest, " tag=", tag);
      cur = box.queue.erase(cur);
      continue;
    }
    if (rel && cur->seq > expected) {
      // A successor arrived before the expected message; the gap is
      // recovered from the retransmit log below.
      ++cur;
      continue;
    }
    if (cur->deliver_after != Clock::time_point{}) {
      if (now == Clock::time_point{}) now = Clock::now();
      if (cur->deliver_after > now) {
        *next_deliverable = std::min(*next_deliverable, cur->deliver_after);
        ++cur;
        continue;
      }
    }
    it = cur;
    found = true;
    break;
  }
  if (found) {
    if (rel &&
        payload_checksum(it->payload.data(), it->payload.size()) !=
            it->checksum) {
      // Corrupted on the wire: retransmit from the sender's copy.
      bool recovered = false;
      auto chan = box.log.find(key);
      if (chan != box.log.end()) {
        auto entry = chan->second.find(it->seq);
        if (entry != chan->second.end()) {
          retransmits_->add(1);
          PARSVD_TRACE_INSTANT("comm.retransmit");
          log::debug("pmpi: checksum mismatch, retransmitting seq=", it->seq,
                     " src=", src, " dest=", dest, " tag=", tag);
          it->payload = entry->second;
          recovered = true;
        }
      }
      if (!recovered) {
        throw CommError(
            "pmpi: checksum mismatch with no retransmit copy (src " +
            std::to_string(src) + " -> dest " + std::to_string(dest) +
            ", tag " + std::to_string(tag) + ", seq " +
            std::to_string(it->seq) + ", " +
            std::to_string(it->payload.size()) + " bytes)");
      }
    }
    std::vector<std::byte> payload = std::move(it->payload);
    box.queue.erase(it);
    consume(std::move(payload));
    return true;
  }
  if (rel) {
    // Nothing deliverable in the queue; if the sender already posted
    // the expected message and the fault layer swallowed it, recover
    // it straight from the retransmit log.
    auto chan = box.log.find(key);
    if (chan != box.log.end()) {
      auto entry = chan->second.find(expected);
      if (entry != chan->second.end()) {
        retransmits_->add(1);
        PARSVD_TRACE_INSTANT("comm.retransmit");
        log::debug("pmpi: recovering dropped seq=", expected, " src=", src,
                   " dest=", dest, " tag=", tag);
        std::vector<std::byte> payload = std::move(entry->second);
        consume(std::move(payload));
        return true;
      }
    }
  }
  return false;
}

std::vector<std::byte> Context::wait(int dest, int src, int tag) {
  account_op(dest);
#ifndef NDEBUG
  {
    // A blocking receive racing an outstanding irecv on the same channel
    // would steal its message: same channel-discipline violation as two
    // overlapping irecvs.
    std::lock_guard<std::mutex> lock(irecv_mu_);
    if (open_irecvs_.count({dest, src, tag}) != 0) {
      throw CommError(
          "pmpi: blocking receive overlaps an outstanding non-blocking "
          "receive on channel (dest " +
          std::to_string(dest) + " <- src " + std::to_string(src) + ", tag " +
          std::to_string(tag) + ")");
    }
  }
#endif
  const Channel channel{src, tag};
  return wait_any_impl(dest, std::span<const Channel>(&channel, 1)).second;
}

std::optional<std::vector<std::byte>> Context::try_wait(int dest, int src,
                                                        int tag) {
  PARSVD_REQUIRE(dest >= 0 && dest < size_, "try_wait: dest out of range");
  PARSVD_REQUIRE(src >= 0 && src < size_, "try_wait: src out of range");
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  std::lock_guard<std::mutex> lock(box.mu);
  std::vector<std::byte> out;
  Clock::time_point next_deliverable = Clock::time_point::max();
  if (scan_channel_locked(box, dest, src, tag, &out, &next_deliverable)) {
    return out;
  }
  if (aborted()) {
    throw JobAbortedError("communicator aborted while polling for a message");
  }
  // A delayed-fault message still scheduled for delivery counts as "in
  // flight", so a dead source with one pending is not yet an error.
  if (is_dead(src) && next_deliverable == Clock::time_point::max()) {
    throw RankDeadError("pmpi: rank " + std::to_string(dest) +
                        " polling dead rank " + std::to_string(src) +
                        " (tag " + std::to_string(tag) + ")");
  }
  return std::nullopt;
}

std::pair<std::size_t, std::vector<std::byte>> Context::wait_any(
    int dest, std::span<const Channel> channels) {
  return wait_any_impl(dest, channels);
}

void Context::register_irecv(int dest, int src, int tag) {
#ifndef NDEBUG
  std::lock_guard<std::mutex> lock(irecv_mu_);
  if (!open_irecvs_.insert({dest, src, tag}).second) {
    throw CommError(
        "pmpi: concurrent non-blocking receives share channel (dest " +
        std::to_string(dest) + " <- src " + std::to_string(src) + ", tag " +
        std::to_string(tag) + ")");
  }
#else
  (void)dest;
  (void)src;
  (void)tag;
#endif
}

void Context::unregister_irecv(int dest, int src, int tag) {
#ifndef NDEBUG
  std::lock_guard<std::mutex> lock(irecv_mu_);
  open_irecvs_.erase({dest, src, tag});
#else
  (void)dest;
  (void)src;
  (void)tag;
#endif
}

std::pair<std::size_t, std::vector<std::byte>> Context::wait_any_impl(
    int dest, std::span<const Channel> channels) {
  PARSVD_REQUIRE(dest >= 0 && dest < size_, "wait: dest out of range");
  PARSVD_REQUIRE(!channels.empty(), "wait: no channels to wait on");
  for (const Channel& c : channels) {
    PARSVD_REQUIRE(c.src >= 0 && c.src < size_, "wait: src out of range");
  }
  PARSVD_TRACE_SCOPE("comm.wait");
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  std::unique_lock<std::mutex> lock(box.mu);

  const bool bounded = wait_timeout_.count() > 0;
  // Deadlines run on the watchdog's coarse tick counter: arming and
  // expiry checks are one relaxed atomic load each, so a bounded wait
  // adds no clock reads or armed timers to the messaging fast path. The
  // deadline is armed lazily on the first sleep — a wait that finds its
  // message already queued (the common case) pays nothing at all.
  constexpr std::uint64_t kUnarmed = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t deadline_tick = kUnarmed;
  const auto ticks_for = [](std::chrono::milliseconds ms) {
    // Round up, plus one tick of slop for the partial tick in flight.
    return static_cast<std::uint64_t>(
               (ms + kWatchdogTick - std::chrono::milliseconds(1)) /
               kWatchdogTick) +
           1;
  };
  ExponentialBackoff backoff(wait_timeout_ / 2, 2.0, wait_timeout_ * 2);
  int retries_left = max_retries_;

  for (;;) {
    Clock::time_point next_deliverable = Clock::time_point::max();
    for (std::size_t i = 0; i < channels.size(); ++i) {
      std::vector<std::byte> out;
      if (scan_channel_locked(box, dest, channels[i].src, channels[i].tag,
                              &out, &next_deliverable)) {
        return {i, std::move(out)};
      }
    }
    if (aborted()) {
      throw JobAbortedError("communicator aborted while waiting for a message");
    }
    // Messages already posted by a now-dead rank are still consumable
    // (the scans above), so the wait only fails once EVERY queried
    // source is dead with nothing recoverable in flight.
    bool any_alive = false;
    for (const Channel& c : channels) {
      if (!is_dead(c.src)) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive && next_deliverable == Clock::time_point::max()) {
      if (channels.size() == 1) {
        throw RankDeadError("pmpi: rank " + std::to_string(dest) +
                            " waiting on dead rank " +
                            std::to_string(channels[0].src) + " (tag " +
                            std::to_string(channels[0].tag) + ")");
      }
      throw RankDeadError("pmpi: rank " + std::to_string(dest) +
                          " waiting on " + std::to_string(channels.size()) +
                          " channels whose source ranks are all dead");
    }
    if (bounded) {
      // Expiry is only ever evaluated here — when the rank is about to
      // sleep AGAIN with nothing deliverable — so a wake that finds its
      // message can never time out spuriously.
      const std::uint64_t t = watchdog_ticks_.load(std::memory_order_relaxed);
      if (deadline_tick == kUnarmed) {
        ensure_watchdog();
        deadline_tick = t + ticks_for(wait_timeout_);
      } else if (t >= deadline_tick) {
        if (retries_left > 0) {
          --retries_left;
          timeout_retries_->add(1);
          PARSVD_TRACE_INSTANT("comm.timeout.retry");
          const std::chrono::milliseconds extension = backoff.next();
          log::debug("pmpi: wait timed out (dest ", dest, " <- src ",
                     channels[0].src, ", tag ", channels[0].tag, " [",
                     channels.size(), " channel(s)]), extending deadline by ",
                     extension.count(), " ms");
          deadline_tick = t + ticks_for(extension);
        } else {
          timeouts_->add(1);
          PARSVD_TRACE_INSTANT("comm.timeout");
          throw CommTimeout(
              "pmpi: receive timed out after " +
              std::to_string(wait_timeout_.count()) + " ms and " +
              std::to_string(max_retries_) + " retries (dest " +
              std::to_string(dest) + " <- src " +
              std::to_string(channels[0].src) + ", tag " +
              std::to_string(channels[0].tag) + ", " +
              std::to_string(channels.size()) + " channel(s))");
        }
      }
    }
    if (next_deliverable != Clock::time_point::max()) {
      // A delayed message is scheduled: delivery wants millisecond
      // precision, so this sleep keeps an armed timer. A pending delayed
      // message also defers timeout expiry to the next loop — a timeout
      // means "nothing deliverable and nothing scheduled".
      box.cv.wait_until(lock, next_deliverable);
    } else {
      // Deadline enforcement does NOT need a per-sleep armed timer (the
      // cost of which shows up as whole percents on chatty workloads):
      // sleep untimed; bounded waits are woken by the shared
      // low-frequency watchdog to re-check their deadline.
      box.cv.wait(lock);
    }
  }
}

void Context::abort_job() {
  log::warn("pmpi: aborting job of ", size_, " ranks after a rank failure");
  aborted_.store(true, std::memory_order_release);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    ++barrier_generation_;  // release current waiters
    barrier_cv_.notify_all();
  }
}

void Context::barrier(int rank) {
  PARSVD_TRACE_SCOPE("comm.barrier");
  account_op(rank);
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_waiting_ + dead_count_.load(std::memory_order_acquire) >=
      size_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [this, my_generation] {
    return barrier_generation_ != my_generation || aborted();
  });
  if (aborted()) throw JobAbortedError("communicator aborted during barrier");
}

std::shared_ptr<const Group> Context::group_for(std::vector<int> members) {
  PARSVD_REQUIRE(!members.empty(), "group_for: empty member list");
  std::lock_guard<std::mutex> lock(groups_mu_);
  auto it = groups_.find(members);
  if (it != groups_.end()) return it->second;
  PARSVD_REQUIRE(next_group_id_ <= tags::kMaxGroups,
                 "group_for: group id space exhausted");
  std::shared_ptr<Group> grp(new Group());
  grp->id_ = next_group_id_;
  grp->members_ = members;
  grp->world_to_group_.assign(static_cast<std::size_t>(size_), -1);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const int r = members[i];
    PARSVD_REQUIRE(r >= 0 && r < size_, "group_for: member rank out of range");
    PARSVD_REQUIRE(grp->world_to_group_[static_cast<std::size_t>(r)] == -1,
                   "group_for: duplicate member rank");
    grp->world_to_group_[static_cast<std::size_t>(r)] = static_cast<int>(i);
  }
  const std::string prefix = "comm.group" + std::to_string(grp->id_);
  grp->messages_ = &metrics_.counter(prefix + ".messages");
  grp->bytes_ = &metrics_.counter(prefix + ".bytes");
  ++next_group_id_;
  log::debug("pmpi: minted group ", grp->id_, " with ", members.size(),
             " member(s)");
  std::shared_ptr<const Group> out = std::move(grp);
  groups_.emplace(std::move(members), out);
  return out;
}

std::uint64_t Context::total_bytes() const { return bytes_total_->value(); }

std::uint64_t Context::rank_bytes(int rank) const {
  PARSVD_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
  return bytes_by_rank_[static_cast<std::size_t>(rank)]->value();
}

std::uint64_t Context::total_messages() const {
  return messages_total_->value();
}

// ----------------------------------------------------------- Communicator

Communicator::Communicator(int rank, std::shared_ptr<Context> ctx)
    : rank_(rank), ctx_(std::move(ctx)) {
  PARSVD_REQUIRE(ctx_ != nullptr, "null context");
  PARSVD_REQUIRE(rank_ >= 0 && rank_ < ctx_->size(), "rank out of range");
}

Communicator::Communicator(int rank, std::shared_ptr<Context> ctx,
                           std::shared_ptr<const Group> group)
    : rank_(rank), ctx_(std::move(ctx)), group_(std::move(group)) {
  PARSVD_REQUIRE(ctx_ != nullptr, "null context");
  PARSVD_REQUIRE(group_ != nullptr, "null group");
  PARSVD_REQUIRE(rank_ >= 0 && rank_ < group_->size(),
                 "group rank out of range");
}

void Communicator::check_payload(std::size_t bytes) const {
  if (static_cast<std::uint64_t>(bytes) > ctx_->max_payload_bytes()) {
    throw CommError("pmpi: send of " + std::to_string(bytes) +
                    " bytes exceeds the per-message cap of " +
                    std::to_string(ctx_->max_payload_bytes()) + " bytes");
  }
}

void Communicator::post_scoped(int dest, int tag,
                               std::vector<std::byte> payload) {
  if (group_) group_->note_post(payload.size());
  ctx_->post(wr(rank_), wr(dest), wire_tag(tag), std::move(payload));
}

std::vector<std::byte> Communicator::wait_scoped(int src, int tag) {
  return ctx_->wait(wr(rank_), wr(src), wire_tag(tag));
}

// ------------------------------------------------- communicator groups

std::optional<Communicator> Communicator::split(int color, int key) {
  PARSVD_TRACE_SCOPE("comm.split");
  const int p = size();
  // One allgather of (color, key) over the parent communicator; every
  // rank then derives every subgroup's member list locally and resolves
  // the shared Group from the context registry — no further protocol.
  std::vector<std::int64_t> mine{color, key};
  std::vector<std::int64_t> table = gatherv<std::int64_t>(mine, 0);
  bcast(table, 0);
  PARSVD_REQUIRE(table.size() == 2 * static_cast<std::size_t>(p),
                 "split: malformed (color, key) table");
  // Mint the partition's groups in ascending color order. Every rank
  // walks the same order, so a group can only ever be created after all
  // lower-colored groups exist — ids are deterministic run-to-run even
  // though sibling members race into group_for.
  std::vector<int> colors;
  for (int r = 0; r < p; ++r) {
    const int c = static_cast<int>(table[2 * static_cast<std::size_t>(r)]);
    if (c >= 0) colors.push_back(c);
  }
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  std::optional<Communicator> out;
  for (const int c : colors) {
    // Members of color c, ordered by (key, parent rank) — the
    // MPI_Comm_split tie-break — then mapped to world ranks.
    std::vector<std::pair<std::int64_t, int>> members;
    for (int r = 0; r < p; ++r) {
      if (static_cast<int>(table[2 * static_cast<std::size_t>(r)]) != c) {
        continue;
      }
      members.emplace_back(table[2 * static_cast<std::size_t>(r) + 1], r);
    }
    std::sort(members.begin(), members.end());
    std::vector<int> world;
    world.reserve(members.size());
    int my_group_rank = -1;
    for (const auto& [k, r] : members) {
      if (r == rank_) my_group_rank = static_cast<int>(world.size());
      world.push_back(wr(r));
    }
    std::shared_ptr<const Group> grp = ctx_->group_for(std::move(world));
    if (c == color) out.emplace(Communicator(my_group_rank, ctx_, grp));
  }
  return out;
}

std::optional<Communicator> Communicator::subgroup(
    std::span<const int> ranks) const {
  PARSVD_REQUIRE(!ranks.empty(), "subgroup: empty member list");
  std::vector<int> world;
  world.reserve(ranks.size());
  int my_group_rank = -1;
  for (const int r : ranks) {
    PARSVD_REQUIRE(r >= 0 && r < size(), "subgroup: member rank out of range");
    if (r == rank_) my_group_rank = static_cast<int>(world.size());
    world.push_back(wr(r));
  }
  if (my_group_rank < 0) return std::nullopt;
  return Communicator(my_group_rank, ctx_, ctx_->group_for(std::move(world)));
}

std::vector<int> Communicator::dead_ranks() const {
  if (!group_) return ctx_->dead_ranks();
  std::vector<int> out;
  for (int r = 0; r < size(); ++r) {
    if (ctx_->is_dead(group_->world_rank(r))) out.push_back(r);
  }
  return out;
}

int Communicator::alive_count() const {
  if (!group_) return ctx_->alive_count();
  return size() - static_cast<int>(dead_ranks().size());
}

void Communicator::barrier() {
  if (!group_) {
    ctx_->barrier(rank_);
    return;
  }
  // Group barriers cannot use the context's central barrier (it counts
  // every world rank); a flat gather + release over the group's scoped
  // kBarrier channel gives the same rendezvous with group-local death
  // semantics: a member death surfaces to the group root as
  // RankDeadError while sibling groups' barriers proceed untouched.
  PARSVD_TRACE_SCOPE("comm.barrier.group");
  const int p = size();
  if (p == 1) {
    ctx_->account_op(wr(rank_));
    return;
  }
  if (rank_ == 0) {
    for (int src = 1; src < p; ++src) {
      (void)wait_scoped(src, tags::kBarrier);
    }
    for (int dst = 1; dst < p; ++dst) {
      post_scoped(dst, tags::kBarrier, {});
    }
  } else {
    post_scoped(0, tags::kBarrier, {});
    (void)wait_scoped(0, tags::kBarrier);
  }
}

void pack_matrix_into(const Matrix& m, std::vector<std::byte>& out) {
  const std::int64_t header[2] = {static_cast<std::int64_t>(m.rows()),
                                  static_cast<std::int64_t>(m.cols())};
  const std::size_t body = static_cast<std::size_t>(m.size()) * sizeof(double);
  const std::size_t base = out.size();
  out.resize(base + sizeof(header) + body);
  std::memcpy(out.data() + base, header, sizeof(header));
  std::memcpy(out.data() + base + sizeof(header), m.data(), body);
}

std::vector<std::byte> pack_matrix(const Matrix& m) {
  std::vector<std::byte> payload;
  payload.reserve(2 * sizeof(std::int64_t) +
                  static_cast<std::size_t>(m.size()) * sizeof(double));
  pack_matrix_into(m, payload);
  return payload;
}

Matrix unpack_matrix(std::span<const std::byte> payload) {
  PARSVD_REQUIRE(payload.size() >= 2 * sizeof(std::int64_t),
                 "matrix payload too short");
  std::int64_t header[2];
  std::memcpy(header, payload.data(), sizeof(header));
  Matrix m(static_cast<Index>(header[0]), static_cast<Index>(header[1]));
  const std::size_t body = static_cast<std::size_t>(m.size()) * sizeof(double);
  PARSVD_REQUIRE(payload.size() == sizeof(header) + body,
                 "matrix payload size mismatch");
  std::memcpy(m.data(), payload.data() + sizeof(header), body);
  return m;
}

void Communicator::send_matrix(const Matrix& m, int dest, int tag) {
  check_peer(dest);
  check_tag(tag);
  check_payload(2 * sizeof(std::int64_t) +
                static_cast<std::size_t>(m.size()) * sizeof(double));
  post_scoped(dest, tag, pack_matrix(m));
}

Matrix Communicator::recv_matrix(int src, int tag) {
  check_peer(src);
  check_tag(tag);
  return unpack_matrix(wait_scoped(src, tag));
}

Request Communicator::isend_matrix(const Matrix& m, int dest, int tag) {
  check_peer(dest);
  check_tag(tag);
  check_payload(2 * sizeof(std::int64_t) +
                static_cast<std::size_t>(m.size()) * sizeof(double));
  post_scoped(dest, tag, pack_matrix(m));
  return Request(ctx_, Request::Kind::Send, wr(rank_), wr(dest), wire_tag(tag),
                 /*done=*/true);
}

Request Communicator::irecv(int src, int tag) {
  check_peer(src);
  check_tag(tag);
  // The op is accounted NOW, not when the message is consumed, so a
  // deterministic fault schedule sees the same per-rank op sequence no
  // matter how often the request is polled before completion.
  ctx_->account_op(wr(rank_));
  ctx_->register_irecv(wr(rank_), wr(src), wire_tag(tag));
  return Request(ctx_, Request::Kind::Recv, wr(rank_), wr(src), wire_tag(tag),
                 /*done=*/false);
}

void Communicator::bcast_matrix(Matrix& m, int root) {
  std::vector<std::byte> payload;
  if (rank_ == root) payload = pack_matrix(m);
  bcast(payload, root);
  if (rank_ != root) m = unpack_matrix(payload);
}

void Communicator::bcast_double(double& value, int root) {
  std::vector<double> buf{value};
  bcast(buf, root);
  value = buf.at(0);
}

void Communicator::bcast_index(Index& value, int root) {
  std::vector<std::int64_t> buf{static_cast<std::int64_t>(value)};
  bcast(buf, root);
  value = static_cast<Index>(buf.at(0));
}

// --------------------------------------------- collective topology policy

// The predicates themselves are pure functions in pmpi/topology.hpp,
// shared with the static verifier; these wrappers bind them to the
// live Context settings.
bool Communicator::use_tree_gather() const {
  return topology::use_tree_gather(ctx_->collective_algo(), size(),
                                   ctx_->tree_min_ranks());
}

bool Communicator::use_tree_reduce(std::size_t bytes) const {
  return topology::use_tree_reduce(ctx_->collective_algo(), size(), bytes,
                                   ctx_->tree_min_ranks(),
                                   ctx_->eager_threshold_bytes());
}

namespace {

/// Gather frames are self-describing so internal tree nodes can append
/// subtrees without any global size agreement:
///   [u64 n_entries][n_entries x (u64 src, u64 nbytes)][payloads...]
std::vector<std::byte> encode_gather_frame(
    const std::vector<std::pair<int, std::vector<std::byte>>>& entries) {
  std::size_t total = sizeof(std::uint64_t);
  for (const auto& [src, payload] : entries) {
    total += 2 * sizeof(std::uint64_t) + payload.size();
  }
  std::vector<std::byte> frame(total);
  std::byte* cursor = frame.data();
  const std::uint64_t n = entries.size();
  std::memcpy(cursor, &n, sizeof(n));
  cursor += sizeof(n);
  for (const auto& [src, payload] : entries) {
    const std::uint64_t meta[2] = {static_cast<std::uint64_t>(src),
                                   static_cast<std::uint64_t>(payload.size())};
    std::memcpy(cursor, meta, sizeof(meta));
    cursor += sizeof(meta);
  }
  for (const auto& [src, payload] : entries) {
    if (payload.empty()) continue;
    std::memcpy(cursor, payload.data(), payload.size());
    cursor += payload.size();
  }
  return frame;
}

/// Append a frame's entries to `entries` (non-root nodes) or place them
/// by source rank into `out` (root). Exactly one of the two is used.
void decode_gather_frame(
    std::span<const std::byte> frame,
    std::vector<std::pair<int, std::vector<std::byte>>>* entries,
    std::vector<std::vector<std::byte>>* out, int p) {
  PARSVD_REQUIRE(frame.size() >= sizeof(std::uint64_t),
                 "gather frame too short");
  std::uint64_t n = 0;
  std::memcpy(&n, frame.data(), sizeof(n));
  const std::size_t meta_bytes = sizeof(std::uint64_t) +
                                 static_cast<std::size_t>(n) * 2 *
                                     sizeof(std::uint64_t);
  PARSVD_REQUIRE(frame.size() >= meta_bytes, "gather frame header truncated");
  const std::byte* meta = frame.data() + sizeof(std::uint64_t);
  const std::byte* body = frame.data() + meta_bytes;
  std::size_t remaining = frame.size() - meta_bytes;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t entry[2];
    std::memcpy(entry, meta + i * sizeof(entry), sizeof(entry));
    const int src = static_cast<int>(entry[0]);
    const std::size_t nbytes = static_cast<std::size_t>(entry[1]);
    PARSVD_REQUIRE(src >= 0 && src < p, "gather frame: source out of range");
    PARSVD_REQUIRE(nbytes <= remaining, "gather frame body truncated");
    std::vector<std::byte> payload(body, body + nbytes);
    body += nbytes;
    remaining -= nbytes;
    if (entries) {
      entries->emplace_back(src, std::move(payload));
    } else {
      (*out)[static_cast<std::size_t>(src)] = std::move(payload);
    }
  }
  PARSVD_REQUIRE(remaining == 0, "gather frame has trailing bytes");
}

}  // namespace

std::vector<std::vector<std::byte>> Communicator::gather_bytes_tree(
    std::vector<std::byte> local, int root) {
  PARSVD_TRACE_SCOPE("comm.gather.tree");
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  // Children sit at vrank + mask for every mask below our lowest set
  // bit (all of p for the root); the parent is vrank with that bit
  // cleared (topology::binomial_*). Receiving in ascending mask order
  // matches the binomial schedule: small subtrees complete first while
  // big ones are still aggregating below.
  std::vector<std::vector<std::byte>> out;
  std::vector<std::pair<int, std::vector<std::byte>>> entries;
  if (vrank == 0) {
    out.resize(static_cast<std::size_t>(p));
    out[static_cast<std::size_t>(rank_)] = std::move(local);
  } else {
    entries.reserve(
        static_cast<std::size_t>(topology::binomial_subtree(vrank, p)));
    entries.emplace_back(rank_, std::move(local));
  }

  for (const int child_v :
       topology::binomial_children(vrank, p, /*ascending=*/true)) {
    const int child = (child_v + root) % p;
    // One frame per child: the child has already aggregated its whole
    // subtree, which is what turns the root's p-1 sequential receives
    // into log2(p) — the α·(P-1) → α·log P critical-path win.
    const std::vector<std::byte> frame =
        wait_scoped(child, tags::kGatherTree);
    decode_gather_frame(frame, vrank == 0 ? nullptr : &entries,
                        vrank == 0 ? &out : nullptr, p);
  }

  if (vrank != 0) {
    const int parent = (topology::binomial_parent(vrank) + root) % p;
    post_scoped(parent, tags::kGatherTree, encode_gather_frame(entries));
  }
  return out;
}

std::vector<std::vector<std::byte>> Communicator::gather_bytes_impl(
    std::vector<std::byte> local, int root) {
  check_peer(root);
  if (use_tree_gather()) return gather_bytes_tree(std::move(local), root);
  PARSVD_TRACE_SCOPE("comm.gather.flat");
  if (rank_ != root) {
    post_scoped(root, tags::kGather, std::move(local));
    return {};
  }
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(root)] = std::move(local);
  for (int src = 0; src < size(); ++src) {
    if (src == root) continue;
    out[static_cast<std::size_t>(src)] = wait_scoped(src, tags::kGather);
  }
  return out;
}

std::vector<Matrix> Communicator::gather_matrices(const Matrix& local, int root) {
  check_peer(root);
  std::vector<std::vector<std::byte>> parts =
      gather_bytes_impl(pack_matrix(local), root);
  if (rank_ != root) return {};
  std::vector<Matrix> out;
  out.reserve(parts.size());
  for (const auto& part : parts) out.push_back(unpack_matrix(part));
  return out;
}

std::vector<double> Communicator::allgather_double(double value) {
  std::vector<double> local{value};
  std::vector<double> all = gatherv<double>(local, 0);
  bcast(all, 0);
  return all;
}

std::vector<Index> Communicator::allgather_index(Index value) {
  std::vector<std::int64_t> local{static_cast<std::int64_t>(value)};
  std::vector<std::int64_t> all = gatherv<std::int64_t>(local, 0);
  bcast(all, 0);
  std::vector<Index> out(all.size());
  std::transform(all.begin(), all.end(), out.begin(),
                 [](std::int64_t v) { return static_cast<Index>(v); });
  return out;
}

Matrix Communicator::scatter_rows(const Matrix& full,
                                  std::span<const Index> rows_per_rank,
                                  int root) {
  PARSVD_TRACE_SCOPE("comm.scatter_rows");
  check_peer(root);
  PARSVD_REQUIRE(static_cast<int>(rows_per_rank.size()) == size(),
                 "scatter_rows: need one row count per rank");
  if (rank_ == root) {
    Index total = 0;
    for (Index r : rows_per_rank) total += r;
    PARSVD_REQUIRE(total == full.rows(), "scatter_rows: counts don't sum to rows");
    Index offset = 0;
    Matrix mine;
    for (int dst = 0; dst < size(); ++dst) {
      const Index nrows = rows_per_rank[static_cast<std::size_t>(dst)];
      if (dst == root) {
        mine = full.block(offset, 0, nrows, full.cols());
      } else {
        // Pack the row block straight into the wire buffer (one strided
        // pass) instead of materializing a block copy and packing that.
        const std::int64_t header[2] = {static_cast<std::int64_t>(nrows),
                                        static_cast<std::int64_t>(full.cols())};
        std::vector<std::byte> payload(
            sizeof(header) +
            static_cast<std::size_t>(nrows * full.cols()) * sizeof(double));
        std::byte* cursor = payload.data();
        std::memcpy(cursor, header, sizeof(header));
        cursor += sizeof(header);
        for (Index c = 0; c < full.cols(); ++c) {
          std::memcpy(cursor, full.data() + c * full.rows() + offset,
                      static_cast<std::size_t>(nrows) * sizeof(double));
          cursor += static_cast<std::size_t>(nrows) * sizeof(double);
        }
        post_scoped(dst, tags::kScatter, std::move(payload));
      }
      offset += nrows;
    }
    return mine;
  }
  return unpack_matrix(wait_scoped(root, tags::kScatter));
}

namespace {

void apply_op(Op op, std::span<double> acc, std::span<const double> incoming) {
  PARSVD_REQUIRE(acc.size() == incoming.size(), "reduce length mismatch");
  switch (op) {
    case Op::Sum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += incoming[i];
      return;
    case Op::Max:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], incoming[i]);
      return;
    case Op::Min:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], incoming[i]);
      return;
  }
  throw ConfigError("unknown reduction op");
}

}  // namespace

void Communicator::reduce(std::span<double> data, Op op, int root) {
  check_peer(root);
  if (size() == 1) return;
  if (use_tree_reduce(data.size_bytes())) {
    reduce_tree(data, op, root);
    return;
  }
  PARSVD_TRACE_SCOPE("comm.reduce.flat");
  if (rank_ != root) {
    std::vector<std::byte> payload(data.size_bytes());
    std::memcpy(payload.data(), data.data(), data.size_bytes());
    post_scoped(root, tags::kReduce, std::move(payload));
    return;
  }
  // Accumulate contributions in a fixed rank order so the result is
  // deterministic run-to-run (floating-point reduction order matters).
  for (int src = 0; src < size(); ++src) {
    if (src == root) continue;
    const std::vector<std::byte> payload = wait_scoped(src, tags::kReduce);
    PARSVD_REQUIRE(payload.size() == data.size_bytes(),
                   "reduce: contribution size mismatch");
    std::span<const double> incoming(
        reinterpret_cast<const double*>(payload.data()), data.size());
    apply_op(op, data, incoming);
  }
}

void Communicator::reduce_tree(std::span<double> data, Op op, int root) {
  // Binomial tree mirroring gather_bytes_tree: each node folds its
  // children's subtree partials into its own copy (own data first, then
  // children in ascending mask order — a fixed association per (p,
  // root), so the result is deterministic run-to-run; the association
  // differs from the flat root-ordered fold in the usual last-bit
  // floating-point sense). Non-root `data` stays untouched.
  PARSVD_TRACE_SCOPE("comm.reduce.tree");
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  std::vector<double> acc(data.begin(), data.end());
  for (const int child_v :
       topology::binomial_children(vrank, p, /*ascending=*/true)) {
    const int child = (child_v + root) % p;
    const std::vector<std::byte> payload =
        wait_scoped(child, tags::kReduceTree);
    PARSVD_REQUIRE(payload.size() == data.size_bytes(),
                   "reduce: contribution size mismatch");
    std::span<const double> incoming(
        reinterpret_cast<const double*>(payload.data()), data.size());
    apply_op(op, acc, incoming);
  }
  if (vrank == 0) {
    std::copy(acc.begin(), acc.end(), data.begin());
  } else {
    const int parent = (topology::binomial_parent(vrank) + root) % p;
    std::vector<std::byte> payload(data.size_bytes());
    std::memcpy(payload.data(), acc.data(), payload.size());
    post_scoped(parent, tags::kReduceTree, std::move(payload));
  }
}

void Communicator::allreduce(std::span<double> data, Op op) {
  if (size() == 1) return;
  if (use_tree_reduce(data.size_bytes())) {
    allreduce_rd(data, op);
    return;
  }
  PARSVD_TRACE_SCOPE("comm.allreduce.flat");
  reduce(data, op, 0);
  std::vector<double> buf(data.begin(), data.end());
  bcast(buf, 0);
  std::copy(buf.begin(), buf.end(), data.begin());
}

void Communicator::allreduce_rd(std::span<double> data, Op op) {
  // Recursive doubling over the largest power-of-two core, with the
  // surplus ranks folded in before and fanned out after (the classic
  // MPICH shape; schedule math in topology::rd_schedule). Every rank
  // applies the same balanced combine tree, and the elementwise
  // two-operand ops (sum/max/min of two doubles) are exactly
  // commutative in IEEE arithmetic, so all ranks finish with
  // bit-identical results.
  PARSVD_TRACE_SCOPE("comm.allreduce.rd");
  const topology::RdSchedule sched = topology::rd_schedule(rank_, size());
  std::vector<double> acc(data.begin(), data.end());
  std::vector<double> incoming;

  const auto exchange_with = [&](int partner) {
    std::vector<std::byte> payload(acc.size() * sizeof(double));
    std::memcpy(payload.data(), acc.data(), payload.size());
    post_scoped(partner, tags::kAllreduce, std::move(payload));
    const std::vector<std::byte> reply =
        wait_scoped(partner, tags::kAllreduce);
    PARSVD_REQUIRE(reply.size() == data.size_bytes(),
                   "allreduce: contribution size mismatch");
    incoming.assign(reinterpret_cast<const double*>(reply.data()),
                    reinterpret_cast<const double*>(reply.data()) + data.size());
  };

  // Fold-in: the first 2*rem ranks pair up; odd ranks hand their data
  // to the even neighbour and sit out the doubling phase.
  if (sched.folded_out) {
    std::vector<std::byte> payload(acc.size() * sizeof(double));
    std::memcpy(payload.data(), acc.data(), payload.size());
    post_scoped(sched.fold_peer, tags::kAllreduce, std::move(payload));
    const std::vector<std::byte> result =
        wait_scoped(sched.fold_peer, tags::kAllreduce);
    PARSVD_REQUIRE(result.size() == data.size_bytes(),
                   "allreduce: result size mismatch");
    std::memcpy(data.data(), result.data(), result.size());
    return;
  }
  if (sched.fold_peer >= 0) {
    const std::vector<std::byte> payload =
        wait_scoped(sched.fold_peer, tags::kAllreduce);
    PARSVD_REQUIRE(payload.size() == data.size_bytes(),
                   "allreduce: contribution size mismatch");
    apply_op(op, acc,
             std::span<const double>(
                 reinterpret_cast<const double*>(payload.data()), data.size()));
  }

  for (const int partner : sched.partners) {
    exchange_with(partner);
    apply_op(op, acc, incoming);
  }

  if (sched.fold_peer >= 0) {
    // Fan the finished result back out to the folded-in odd partner.
    std::vector<std::byte> payload(acc.size() * sizeof(double));
    std::memcpy(payload.data(), acc.data(), payload.size());
    post_scoped(sched.fold_peer, tags::kAllreduce, std::move(payload));
  }
  std::copy(acc.begin(), acc.end(), data.begin());
}

double Communicator::allreduce_scalar(double value, Op op) {
  double buf[1] = {value};
  allreduce(std::span<double>(buf, 1), op);
  return buf[0];
}

// -------------------------------------------- fault-tolerant collectives

std::vector<std::optional<std::vector<std::byte>>> Communicator::gather_bytes_ft(
    std::span<const std::byte> local, int root) {
  return gather_bytes_ft(std::vector<std::byte>(local.begin(), local.end()),
                         root);
}

std::vector<std::optional<std::vector<std::byte>>> Communicator::gather_bytes_ft(
    std::vector<std::byte>&& local, int root) {
  PARSVD_TRACE_SCOPE("comm.gather.ft");
  check_peer(root);
  if (rank_ != root) {
    post_scoped(root, tags::kFtGather, std::move(local));
    return {};
  }
  std::vector<std::optional<std::vector<std::byte>>> out(
      static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(root)] = std::move(local);
  for (int src = 0; src < size(); ++src) {
    if (src == root) continue;
    try {
      out[static_cast<std::size_t>(src)] =
          wait_scoped(src, tags::kFtGather);
    } catch (const RankDeadError&) {
      // Died before posting its contribution: excluded, not waited for.
      out[static_cast<std::size_t>(src)] = std::nullopt;
    }
  }
  return out;
}

std::vector<std::optional<Matrix>> Communicator::gather_matrices_ft(
    const Matrix& local, int root) {
  std::vector<std::optional<std::vector<std::byte>>> raw =
      gather_bytes_ft(pack_matrix(local), root);
  std::vector<std::optional<Matrix>> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i]) out[i] = unpack_matrix(*raw[i]);
  }
  return out;
}

void Communicator::bcast_bytes_ft(std::vector<std::byte>& payload, int root) {
  PARSVD_TRACE_SCOPE("comm.bcast.ft");
  check_peer(root);
  if (size() == 1) return;
  if (rank_ == root) {
    for (int dst = 0; dst < size(); ++dst) {
      if (dst == root || is_dead(dst)) continue;
      // A rank dying after this aliveness check is harmless: the posted
      // copy simply stays unconsumed in its mailbox.
      post_scoped(dst, tags::kFtBcast, std::vector<std::byte>(payload));
    }
  } else {
    // Root-must-survive contract: the FT collectives recover from
    // non-root deaths only; root owns the recovered result, so a naked
    // wait on it is the documented exception. parsvd-lint: allow-ft-wait
    payload = wait_scoped(root, tags::kFtBcast);
  }
}

void Communicator::bcast_matrix_ft(Matrix& m, int root) {
  std::vector<std::byte> payload;
  if (rank_ == root) payload = pack_matrix(m);
  bcast_bytes_ft(payload, root);
  if (rank_ != root) m = unpack_matrix(payload);
}

void Communicator::bcast_doubles_ft(std::vector<double>& values, int root) {
  std::vector<std::byte> payload;
  if (rank_ == root) {
    payload.resize(values.size() * sizeof(double));
    std::memcpy(payload.data(), values.data(), payload.size());
  }
  bcast_bytes_ft(payload, root);
  if (rank_ != root) {
    PARSVD_REQUIRE(payload.size() % sizeof(double) == 0,
                   "bcast_doubles_ft: payload not a whole number of doubles");
    values.resize(payload.size() / sizeof(double));
    std::memcpy(values.data(), payload.data(), payload.size());
  }
}

void Communicator::allreduce_sum_ft(std::span<double> data, int root) {
  PARSVD_TRACE_SCOPE("comm.allreduce.ft");
  std::vector<std::byte> payload(data.size_bytes());
  std::memcpy(payload.data(), data.data(), data.size_bytes());
  std::vector<std::optional<std::vector<std::byte>>> contributions =
      gather_bytes_ft(payload, root);
  std::vector<double> total(data.size(), 0.0);
  if (rank_ == root) {
    for (const auto& c : contributions) {
      if (!c) continue;
      PARSVD_REQUIRE(c->size() == data.size_bytes(),
                     "allreduce_sum_ft: contribution size mismatch");
      std::span<const double> incoming(
          reinterpret_cast<const double*>(c->data()), data.size());
      for (std::size_t i = 0; i < total.size(); ++i) total[i] += incoming[i];
    }
  }
  bcast_doubles_ft(total, root);
  std::copy(total.begin(), total.end(), data.begin());
}

// ------------------------------------------------------------------ run

std::shared_ptr<Context> run_on(std::shared_ptr<Context> ctx,
                                const std::function<void(Communicator&)>& fn) {
  PARSVD_REQUIRE(ctx != nullptr, "run_on: null context");
  const int size = ctx->size();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([r, &fn, ctx, &errors] {
      // Rank threads get pid = rank+1 in the trace (pid 0 is reserved
      // for shared infrastructure threads: pool, watchdog, prefetch).
      obs::set_thread_identity(r, 0, "rank-main");
      try {
        Communicator comm(r, ctx);
        fn(comm);
      } catch (const RankKilledError&) {
        // Injected death: the context marked the rank dead and woke its
        // peers. The survivors decide the job's fate — degraded
        // completion returns normally, stuck survivors surface typed
        // RankDeadError/CommTimeout through the branch below.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Wake peers blocked on messages this rank will never send.
        ctx->abort_job();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the root cause. Ranks merely woken by abort_job carry
  // JobAbortedError; a non-comm error (assertion, bad_alloc, ...) beats
  // any comm error, and any primary comm error beats an abort victim.
  std::exception_ptr first;      // fallback: lowest-rank error of any kind
  std::exception_ptr primary;    // lowest-rank non-JobAborted CommError
  for (const auto& err : errors) {
    if (!err) continue;
    if (!first) first = err;
    try {
      std::rethrow_exception(err);
    } catch (const JobAbortedError&) {
      continue;
    } catch (const CommError&) {
      if (!primary) primary = err;
      continue;
    } catch (...) {
      primary = err;
      break;
    }
  }
  if (primary) std::rethrow_exception(primary);
  if (first) std::rethrow_exception(first);
  return ctx;
}

std::shared_ptr<Context> run_with_stats(
    int size, const std::function<void(Communicator&)>& fn) {
  return run_on(std::make_shared<Context>(size), fn);
}

void run(int size, const std::function<void(Communicator&)>& fn) {
  run_with_stats(size, fn);
}

}  // namespace parsvd::pmpi
