#include "pmpi/comm.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <thread>

#include "support/env.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace parsvd::pmpi {

// ---------------------------------------------------------------- Context

Context::Context(int size)
    : size_(size),
      op_counters_(static_cast<std::size_t>(std::max(size, 1))),
      dead_(static_cast<std::size_t>(std::max(size, 1))) {
  PARSVD_REQUIRE(size >= 1, "communicator size must be >= 1");
  boxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
  bytes_by_rank_.assign(static_cast<std::size_t>(size), 0);
  wait_timeout_ = std::chrono::milliseconds(
      std::max<std::int64_t>(0, env::get_int("PARSVD_FAULT_TIMEOUT_MS", 0)));
  max_retries_ = static_cast<int>(
      std::max<std::int64_t>(0, env::get_int("PARSVD_FAULT_RETRIES", 3)));
  const std::int64_t max_mb = env::get_int("PARSVD_MAX_PAYLOAD_MB", 0);
  if (max_mb > 0) max_payload_ = static_cast<std::uint64_t>(max_mb) << 20;
  FaultPlan env_plan = FaultPlan::from_env();
  if (!env_plan.empty()) set_fault_plan(std::move(env_plan));
}

Context::~Context() {
  watchdog_stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_cv_.notify_all();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

void Context::ensure_watchdog() {
  if (watchdog_started_.load(std::memory_order_acquire)) return;
  // Called with a mailbox mutex held; safe because the watchdog never
  // holds watchdog_mu_ while taking a mailbox mutex.
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  if (watchdog_started_.load(std::memory_order_relaxed)) return;
  watchdog_ = std::thread([this] { watchdog_loop(); });
  watchdog_started_.store(true, std::memory_order_release);
}

void Context::watchdog_loop() {
  // Low-frequency broadcaster backing bounded wait() deadlines: sleeping
  // receivers use plain (untimed) cv waits and rely on these periodic
  // wakes to notice an expired deadline. The tick bounds how late a
  // CommTimeout can fire, and one shared timer replaces a per-sleep
  // armed timer on every blocking receive.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock, kWatchdogTick);
    }
    if (watchdog_stop_.load(std::memory_order_acquire)) return;
    watchdog_ticks_.fetch_add(1, std::memory_order_relaxed);
    for (auto& box : boxes_) {
      std::lock_guard<std::mutex> lock(box->mu);
      box->cv.notify_all();
    }
  }
}

void Context::set_fault_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  plan_active_ = !plan_.empty();
  plan_can_kill_ = plan_active_ && plan_.can_kill();
  if (plan_active_) {
    // Faulted messages need the envelope to be detectable, and a silent
    // drop must become a typed timeout rather than a hang.
    set_reliability(true);
    if (wait_timeout_.count() == 0) {
      wait_timeout_ = std::chrono::milliseconds(2000);
    }
  }
}

void Context::set_wait_timeout(std::chrono::milliseconds timeout) {
  wait_timeout_ = std::max(timeout, std::chrono::milliseconds(0));
}

void Context::set_max_retries(int retries) {
  max_retries_ = std::max(retries, 0);
}

std::uint64_t Context::account_op(int rank) {
  if (rank < 0) return 0;
  const std::uint64_t op = op_counters_[static_cast<std::size_t>(rank)]
                               .fetch_add(1, std::memory_order_relaxed);
  if (plan_can_kill_ && plan_.kills(rank, op)) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    log::warn("pmpi: fault plan kills rank ", rank, " at op ", op);
    mark_dead(rank);
    throw RankKilledError("rank " + std::to_string(rank) +
                          " killed by fault plan at op " + std::to_string(op));
  }
  return op;
}

void Context::mark_dead(int rank) {
  if (rank < 0 || rank >= size_) return;
  if (dead_[static_cast<std::size_t>(rank)].exchange(
          true, std::memory_order_acq_rel)) {
    return;
  }
  dead_count_.fetch_add(1, std::memory_order_acq_rel);
  log::warn("pmpi: rank ", rank, " is dead (", alive_count(), " of ", size_,
            " ranks survive)");
  // Wake every blocked wait() so peers observing the death convert it
  // into RankDeadError / degraded exclusion instead of sleeping on.
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  // A barrier no longer waits for the dead rank: release the current
  // generation if the survivors are all present.
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    if (barrier_waiting_ > 0 &&
        barrier_waiting_ + dead_count_.load(std::memory_order_acquire) >=
            size_) {
      barrier_waiting_ = 0;
      ++barrier_generation_;
    }
    barrier_cv_.notify_all();
  }
}

std::vector<int> Context::dead_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < size_; ++r) {
    if (is_dead(r)) out.push_back(r);
  }
  return out;
}

void Context::post(int src, int dest, int tag, std::vector<std::byte> payload) {
  PARSVD_REQUIRE(dest >= 0 && dest < size_, "post: dest out of range");
  if (payload.size() > max_payload_) {
    throw CommError("pmpi: payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the per-message cap of " +
                    std::to_string(max_payload_) + " bytes");
  }
  const std::uint64_t op = account_op(src);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    bytes_by_rank_[static_cast<std::size_t>(src)] += payload.size();
    ++messages_;
  }
  const bool rel = reliability();
  const bool inject = plan_active_ && rel;
  const std::uint64_t checksum =
      rel ? payload_checksum(payload.data(), payload.size()) : 0;
  std::optional<FaultDecision> fault;
  if (inject) fault = plan_.on_message(src, op);

  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    const ChannelKey key{src, tag};
    const std::uint64_t seq = rel ? box.send_seq[key]++ : 0;
    PendingMessage msg{src,      tag, seq, checksum, Clock::time_point{},
                       std::move(payload)};
    log::trace("pmpi: post src=", src, " dest=", dest, " tag=", tag,
               " seq=", seq, " bytes=", msg.payload.size());
    if (fault) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      log::debug("pmpi: inject ", to_string(fault->kind), " src=", src,
                 " dest=", dest, " tag=", tag, " seq=", seq);
      switch (fault->kind) {
        case FaultKind::Drop:
          // Lost on the wire; the original stays in the retransmit log
          // until the receiver recovers (NACK-equivalent) or acks past it.
          box.log[key][seq] = std::move(msg.payload);
          break;
        case FaultKind::Truncate: {
          box.log[key][seq] = msg.payload;
          const std::size_t cut =
              std::min<std::size_t>(msg.payload.size(), fault->param);
          msg.payload.resize(msg.payload.size() - cut);
          box.queue.push_back(std::move(msg));
          break;
        }
        case FaultKind::Duplicate: {
          PendingMessage copy = msg;
          box.queue.push_back(std::move(copy));
          box.queue.push_back(std::move(msg));
          break;
        }
        case FaultKind::Delay:
          msg.deliver_after =
              Clock::now() + std::chrono::milliseconds(fault->param);
          box.queue.push_back(std::move(msg));
          break;
        case FaultKind::Kill:
          // Kills are evaluated in account_op, never as a message fault.
          box.queue.push_back(std::move(msg));
          break;
      }
    } else {
      box.queue.push_back(std::move(msg));
    }
  }
  box.cv.notify_all();
}

std::vector<std::byte> Context::wait(int dest, int src, int tag) {
  PARSVD_REQUIRE(dest >= 0 && dest < size_, "wait: dest out of range");
  PARSVD_REQUIRE(src >= 0 && src < size_, "wait: src out of range");
  account_op(dest);
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  const ChannelKey key{src, tag};
  std::unique_lock<std::mutex> lock(box.mu);

  const bool rel = reliability();
  // Only this rank's thread consumes from this mailbox, so the expected
  // sequence number is stable for the duration of the call.
  const std::uint64_t expected = rel ? box.recv_seq[key] : 0;

  // Consume `payload` as the channel's next message: advance the
  // expected sequence number and drop acknowledged retransmit copies.
  const auto consume = [&](std::vector<std::byte> payload) {
    log::trace("pmpi: consume dest=", dest, " src=", src, " tag=", tag,
               " seq=", expected, " bytes=", payload.size());
    if (rel) {
      box.recv_seq[key] = expected + 1;
      auto chan = box.log.find(key);
      if (chan != box.log.end()) {
        chan->second.erase(chan->second.begin(),
                           chan->second.upper_bound(expected));
        if (chan->second.empty()) box.log.erase(chan);
      }
    }
    return payload;
  };

  const bool bounded = wait_timeout_.count() > 0;
  // Deadlines run on the watchdog's coarse tick counter: arming and
  // expiry checks are one relaxed atomic load each, so a bounded wait
  // adds no clock reads or armed timers to the messaging fast path. The
  // deadline is armed lazily on the first sleep — a wait that finds its
  // message already queued (the common case) pays nothing at all.
  constexpr std::uint64_t kUnarmed = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t deadline_tick = kUnarmed;
  const auto ticks_for = [](std::chrono::milliseconds ms) {
    // Round up, plus one tick of slop for the partial tick in flight.
    return static_cast<std::uint64_t>(
               (ms + kWatchdogTick - std::chrono::milliseconds(1)) /
               kWatchdogTick) +
           1;
  };
  ExponentialBackoff backoff(wait_timeout_ / 2, 2.0, wait_timeout_ * 2);
  int retries_left = max_retries_;

  for (;;) {
    // Fetched lazily: only delayed-fault messages carry a non-epoch
    // deliver_after, so the scan normally needs no clock read at all.
    Clock::time_point now{};
    Clock::time_point next_deliverable = Clock::time_point::max();
    // NOTE: the stale-duplicate erase below invalidates deque end()
    // iterators, so the candidate must be tracked with a flag rather
    // than compared against a sentinel captured before the scan.
    auto it = box.queue.end();
    bool found = false;
    for (auto cur = box.queue.begin(); cur != box.queue.end();) {
      if (cur->src != src || cur->tag != tag) {
        ++cur;
        continue;
      }
      if (rel && cur->seq < expected) {
        // Stale duplicate of an already-consumed message.
        log::trace("pmpi: dropping duplicate seq=", cur->seq, " src=", src,
                   " dest=", dest, " tag=", tag);
        cur = box.queue.erase(cur);
        continue;
      }
      if (rel && cur->seq > expected) {
        // A successor arrived before the expected message; the gap is
        // recovered from the retransmit log below.
        ++cur;
        continue;
      }
      if (cur->deliver_after != Clock::time_point{}) {
        if (now == Clock::time_point{}) now = Clock::now();
        if (cur->deliver_after > now) {
          next_deliverable = std::min(next_deliverable, cur->deliver_after);
          ++cur;
          continue;
        }
      }
      it = cur;
      found = true;
      break;
    }
    if (found) {
      if (rel &&
          payload_checksum(it->payload.data(), it->payload.size()) !=
              it->checksum) {
        // Corrupted on the wire: retransmit from the sender's copy.
        bool recovered = false;
        auto chan = box.log.find(key);
        if (chan != box.log.end()) {
          auto entry = chan->second.find(it->seq);
          if (entry != chan->second.end()) {
            retransmits_.fetch_add(1, std::memory_order_relaxed);
            log::debug("pmpi: checksum mismatch, retransmitting seq=",
                       it->seq, " src=", src, " dest=", dest, " tag=", tag);
            it->payload = entry->second;
            recovered = true;
          }
        }
        if (!recovered) {
          throw CommError(
              "pmpi: checksum mismatch with no retransmit copy (src " +
              std::to_string(src) + " -> dest " + std::to_string(dest) +
              ", tag " + std::to_string(tag) + ", seq " +
              std::to_string(it->seq) + ", " +
              std::to_string(it->payload.size()) + " bytes)");
        }
      }
      std::vector<std::byte> payload = std::move(it->payload);
      box.queue.erase(it);
      return consume(std::move(payload));
    }
    if (rel) {
      // Nothing deliverable in the queue; if the sender already posted
      // the expected message and the fault layer swallowed it, recover
      // it straight from the retransmit log.
      auto chan = box.log.find(key);
      if (chan != box.log.end()) {
        auto entry = chan->second.find(expected);
        if (entry != chan->second.end()) {
          retransmits_.fetch_add(1, std::memory_order_relaxed);
          log::debug("pmpi: recovering dropped seq=", expected, " src=", src,
                     " dest=", dest, " tag=", tag);
          std::vector<std::byte> payload = std::move(entry->second);
          return consume(std::move(payload));
        }
      }
    }
    if (aborted()) {
      throw JobAbortedError("communicator aborted while waiting for a message");
    }
    if (is_dead(src)) {
      throw RankDeadError("pmpi: rank " + std::to_string(dest) +
                          " waiting on dead rank " + std::to_string(src) +
                          " (tag " + std::to_string(tag) + ")");
    }
    if (bounded) {
      // Expiry is only ever evaluated here — when the rank is about to
      // sleep AGAIN with nothing deliverable — so a wake that finds its
      // message can never time out spuriously.
      const std::uint64_t t = watchdog_ticks_.load(std::memory_order_relaxed);
      if (deadline_tick == kUnarmed) {
        ensure_watchdog();
        deadline_tick = t + ticks_for(wait_timeout_);
      } else if (t >= deadline_tick) {
        if (retries_left > 0) {
          --retries_left;
          const std::chrono::milliseconds extension = backoff.next();
          log::debug("pmpi: wait timed out (dest ", dest, " <- src ", src,
                     ", tag ", tag, "), extending deadline by ",
                     extension.count(), " ms");
          deadline_tick = t + ticks_for(extension);
        } else {
          throw CommTimeout(
              "pmpi: receive timed out after " +
              std::to_string(wait_timeout_.count()) + " ms and " +
              std::to_string(max_retries_) + " retries (dest " +
              std::to_string(dest) + " <- src " + std::to_string(src) +
              ", tag " + std::to_string(tag) + ")");
        }
      }
    }
    if (next_deliverable != Clock::time_point::max()) {
      // A delayed message is scheduled: delivery wants millisecond
      // precision, so this sleep keeps an armed timer. A pending delayed
      // message also defers timeout expiry to the next loop — a timeout
      // means "nothing deliverable and nothing scheduled".
      box.cv.wait_until(lock, next_deliverable);
    } else {
      // Deadline enforcement does NOT need a per-sleep armed timer (the
      // cost of which shows up as whole percents on chatty workloads):
      // sleep untimed; bounded waits are woken by the shared
      // low-frequency watchdog to re-check their deadline.
      box.cv.wait(lock);
    }
  }
}

void Context::abort_job() {
  log::warn("pmpi: aborting job of ", size_, " ranks after a rank failure");
  aborted_.store(true, std::memory_order_release);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    ++barrier_generation_;  // release current waiters
    barrier_cv_.notify_all();
  }
}

void Context::barrier(int rank) {
  account_op(rank);
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_waiting_ + dead_count_.load(std::memory_order_acquire) >=
      size_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [this, my_generation] {
    return barrier_generation_ != my_generation || aborted();
  });
  if (aborted()) throw JobAbortedError("communicator aborted during barrier");
}

std::uint64_t Context::total_bytes() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::uint64_t sum = 0;
  for (std::uint64_t b : bytes_by_rank_) sum += b;
  return sum;
}

std::uint64_t Context::rank_bytes(int rank) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  PARSVD_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
  return bytes_by_rank_[static_cast<std::size_t>(rank)];
}

std::uint64_t Context::total_messages() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return messages_;
}

// ----------------------------------------------------------- Communicator

Communicator::Communicator(int rank, std::shared_ptr<Context> ctx)
    : rank_(rank), ctx_(std::move(ctx)) {
  PARSVD_REQUIRE(ctx_ != nullptr, "null context");
  PARSVD_REQUIRE(rank_ >= 0 && rank_ < ctx_->size(), "rank out of range");
}

void Communicator::check_payload(std::size_t bytes) const {
  if (static_cast<std::uint64_t>(bytes) > ctx_->max_payload_bytes()) {
    throw CommError("pmpi: send of " + std::to_string(bytes) +
                    " bytes exceeds the per-message cap of " +
                    std::to_string(ctx_->max_payload_bytes()) + " bytes");
  }
}

void Communicator::send_bytes(std::vector<std::byte> payload, int dest, int tag) {
  ctx_->post(rank_, dest, tag, std::move(payload));
}

std::vector<std::byte> Communicator::recv_bytes(int src, int tag) {
  return ctx_->wait(rank_, src, tag);
}

std::vector<std::byte> pack_matrix(const Matrix& m) {
  const std::int64_t header[2] = {static_cast<std::int64_t>(m.rows()),
                                  static_cast<std::int64_t>(m.cols())};
  std::vector<std::byte> payload(sizeof(header) +
                                 static_cast<std::size_t>(m.size()) * sizeof(double));
  std::memcpy(payload.data(), header, sizeof(header));
  std::memcpy(payload.data() + sizeof(header), m.data(),
              static_cast<std::size_t>(m.size()) * sizeof(double));
  return payload;
}

Matrix unpack_matrix(std::span<const std::byte> payload) {
  PARSVD_REQUIRE(payload.size() >= 2 * sizeof(std::int64_t),
                 "matrix payload too short");
  std::int64_t header[2];
  std::memcpy(header, payload.data(), sizeof(header));
  Matrix m(static_cast<Index>(header[0]), static_cast<Index>(header[1]));
  const std::size_t body = static_cast<std::size_t>(m.size()) * sizeof(double);
  PARSVD_REQUIRE(payload.size() == sizeof(header) + body,
                 "matrix payload size mismatch");
  std::memcpy(m.data(), payload.data() + sizeof(header), body);
  return m;
}

void Communicator::send_matrix(const Matrix& m, int dest, int tag) {
  check_peer(dest);
  check_tag(tag);
  check_payload(2 * sizeof(std::int64_t) +
                static_cast<std::size_t>(m.size()) * sizeof(double));
  send_bytes(pack_matrix(m), dest, tag);
}

Matrix Communicator::recv_matrix(int src, int tag) {
  check_peer(src);
  check_tag(tag);
  return unpack_matrix(recv_bytes(src, tag));
}

void Communicator::bcast_matrix(Matrix& m, int root) {
  std::vector<std::byte> payload;
  if (rank_ == root) payload = pack_matrix(m);
  bcast(payload, root);
  if (rank_ != root) m = unpack_matrix(payload);
}

void Communicator::bcast_double(double& value, int root) {
  std::vector<double> buf{value};
  bcast(buf, root);
  value = buf.at(0);
}

void Communicator::bcast_index(Index& value, int root) {
  std::vector<std::int64_t> buf{static_cast<std::int64_t>(value)};
  bcast(buf, root);
  value = static_cast<Index>(buf.at(0));
}

std::vector<Matrix> Communicator::gather_matrices(const Matrix& local, int root) {
  check_peer(root);
  if (rank_ != root) {
    send_bytes(pack_matrix(local), root, kTagGather);
    return {};
  }
  std::vector<Matrix> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (int src = 0; src < size(); ++src) {
    if (src == root) {
      out.push_back(local);
    } else {
      out.push_back(unpack_matrix(ctx_->wait(rank_, src, kTagGather)));
    }
  }
  return out;
}

std::vector<double> Communicator::allgather_double(double value) {
  std::vector<double> local{value};
  std::vector<double> all = gatherv<double>(local, 0);
  bcast(all, 0);
  return all;
}

std::vector<Index> Communicator::allgather_index(Index value) {
  std::vector<std::int64_t> local{static_cast<std::int64_t>(value)};
  std::vector<std::int64_t> all = gatherv<std::int64_t>(local, 0);
  bcast(all, 0);
  std::vector<Index> out(all.size());
  std::transform(all.begin(), all.end(), out.begin(),
                 [](std::int64_t v) { return static_cast<Index>(v); });
  return out;
}

Matrix Communicator::scatter_rows(const Matrix& full,
                                  std::span<const Index> rows_per_rank,
                                  int root) {
  check_peer(root);
  PARSVD_REQUIRE(static_cast<int>(rows_per_rank.size()) == size(),
                 "scatter_rows: need one row count per rank");
  if (rank_ == root) {
    Index total = 0;
    for (Index r : rows_per_rank) total += r;
    PARSVD_REQUIRE(total == full.rows(), "scatter_rows: counts don't sum to rows");
    Index offset = 0;
    Matrix mine;
    for (int dst = 0; dst < size(); ++dst) {
      const Index nrows = rows_per_rank[static_cast<std::size_t>(dst)];
      Matrix block = full.block(offset, 0, nrows, full.cols());
      offset += nrows;
      if (dst == root) {
        mine = std::move(block);
      } else {
        send_bytes(pack_matrix(block), dst, kTagScatter);
      }
    }
    return mine;
  }
  return unpack_matrix(ctx_->wait(rank_, root, kTagScatter));
}

namespace {

void apply_op(Op op, std::span<double> acc, std::span<const double> incoming) {
  PARSVD_REQUIRE(acc.size() == incoming.size(), "reduce length mismatch");
  switch (op) {
    case Op::Sum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += incoming[i];
      return;
    case Op::Max:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], incoming[i]);
      return;
    case Op::Min:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], incoming[i]);
      return;
  }
  throw ConfigError("unknown reduction op");
}

}  // namespace

void Communicator::reduce(std::span<double> data, Op op, int root) {
  check_peer(root);
  if (rank_ != root) {
    std::vector<std::byte> payload(data.size_bytes());
    std::memcpy(payload.data(), data.data(), data.size_bytes());
    send_bytes(std::move(payload), root, kTagReduce);
    return;
  }
  // Accumulate contributions in a fixed rank order so the result is
  // deterministic run-to-run (floating-point reduction order matters).
  for (int src = 0; src < size(); ++src) {
    if (src == root) continue;
    const std::vector<std::byte> payload = ctx_->wait(rank_, src, kTagReduce);
    PARSVD_REQUIRE(payload.size() == data.size_bytes(),
                   "reduce: contribution size mismatch");
    std::span<const double> incoming(
        reinterpret_cast<const double*>(payload.data()), data.size());
    apply_op(op, data, incoming);
  }
}

void Communicator::allreduce(std::span<double> data, Op op) {
  reduce(data, op, 0);
  std::vector<double> buf(data.begin(), data.end());
  bcast(buf, 0);
  std::copy(buf.begin(), buf.end(), data.begin());
}

double Communicator::allreduce_scalar(double value, Op op) {
  double buf[1] = {value};
  allreduce(std::span<double>(buf, 1), op);
  return buf[0];
}

// -------------------------------------------- fault-tolerant collectives

std::vector<std::optional<std::vector<std::byte>>> Communicator::gather_bytes_ft(
    std::span<const std::byte> local, int root) {
  check_peer(root);
  if (rank_ != root) {
    ctx_->post(rank_, root, kTagFtGather,
               std::vector<std::byte>(local.begin(), local.end()));
    return {};
  }
  std::vector<std::optional<std::vector<std::byte>>> out(
      static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(root)] =
      std::vector<std::byte>(local.begin(), local.end());
  for (int src = 0; src < size(); ++src) {
    if (src == root) continue;
    try {
      out[static_cast<std::size_t>(src)] = ctx_->wait(rank_, src, kTagFtGather);
    } catch (const RankDeadError&) {
      // Died before posting its contribution: excluded, not waited for.
      out[static_cast<std::size_t>(src)] = std::nullopt;
    }
  }
  return out;
}

std::vector<std::optional<Matrix>> Communicator::gather_matrices_ft(
    const Matrix& local, int root) {
  const std::vector<std::byte> packed = pack_matrix(local);
  std::vector<std::optional<std::vector<std::byte>>> raw =
      gather_bytes_ft(packed, root);
  std::vector<std::optional<Matrix>> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i]) out[i] = unpack_matrix(*raw[i]);
  }
  return out;
}

void Communicator::bcast_bytes_ft(std::vector<std::byte>& payload, int root) {
  check_peer(root);
  if (size() == 1) return;
  if (rank_ == root) {
    for (int dst = 0; dst < size(); ++dst) {
      if (dst == root || ctx_->is_dead(dst)) continue;
      // A rank dying after this aliveness check is harmless: the posted
      // copy simply stays unconsumed in its mailbox.
      ctx_->post(rank_, dst, kTagFtBcast, std::vector<std::byte>(payload));
    }
  } else {
    payload = ctx_->wait(rank_, root, kTagFtBcast);
  }
}

void Communicator::bcast_matrix_ft(Matrix& m, int root) {
  std::vector<std::byte> payload;
  if (rank_ == root) payload = pack_matrix(m);
  bcast_bytes_ft(payload, root);
  if (rank_ != root) m = unpack_matrix(payload);
}

void Communicator::bcast_doubles_ft(std::vector<double>& values, int root) {
  std::vector<std::byte> payload;
  if (rank_ == root) {
    payload.resize(values.size() * sizeof(double));
    std::memcpy(payload.data(), values.data(), payload.size());
  }
  bcast_bytes_ft(payload, root);
  if (rank_ != root) {
    PARSVD_REQUIRE(payload.size() % sizeof(double) == 0,
                   "bcast_doubles_ft: payload not a whole number of doubles");
    values.resize(payload.size() / sizeof(double));
    std::memcpy(values.data(), payload.data(), payload.size());
  }
}

void Communicator::allreduce_sum_ft(std::span<double> data, int root) {
  std::vector<std::byte> payload(data.size_bytes());
  std::memcpy(payload.data(), data.data(), data.size_bytes());
  std::vector<std::optional<std::vector<std::byte>>> contributions =
      gather_bytes_ft(payload, root);
  std::vector<double> total(data.size(), 0.0);
  if (rank_ == root) {
    for (const auto& c : contributions) {
      if (!c) continue;
      PARSVD_REQUIRE(c->size() == data.size_bytes(),
                     "allreduce_sum_ft: contribution size mismatch");
      std::span<const double> incoming(
          reinterpret_cast<const double*>(c->data()), data.size());
      for (std::size_t i = 0; i < total.size(); ++i) total[i] += incoming[i];
    }
  }
  bcast_doubles_ft(total, root);
  std::copy(total.begin(), total.end(), data.begin());
}

// ------------------------------------------------------------------ run

std::shared_ptr<Context> run_on(std::shared_ptr<Context> ctx,
                                const std::function<void(Communicator&)>& fn) {
  PARSVD_REQUIRE(ctx != nullptr, "run_on: null context");
  const int size = ctx->size();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([r, &fn, ctx, &errors] {
      try {
        Communicator comm(r, ctx);
        fn(comm);
      } catch (const RankKilledError&) {
        // Injected death: the context marked the rank dead and woke its
        // peers. The survivors decide the job's fate — degraded
        // completion returns normally, stuck survivors surface typed
        // RankDeadError/CommTimeout through the branch below.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Wake peers blocked on messages this rank will never send.
        ctx->abort_job();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the root cause. Ranks merely woken by abort_job carry
  // JobAbortedError; a non-comm error (assertion, bad_alloc, ...) beats
  // any comm error, and any primary comm error beats an abort victim.
  std::exception_ptr first;      // fallback: lowest-rank error of any kind
  std::exception_ptr primary;    // lowest-rank non-JobAborted CommError
  for (const auto& err : errors) {
    if (!err) continue;
    if (!first) first = err;
    try {
      std::rethrow_exception(err);
    } catch (const JobAbortedError&) {
      continue;
    } catch (const CommError&) {
      if (!primary) primary = err;
      continue;
    } catch (...) {
      primary = err;
      break;
    }
  }
  if (primary) std::rethrow_exception(primary);
  if (first) std::rethrow_exception(first);
  return ctx;
}

std::shared_ptr<Context> run_with_stats(
    int size, const std::function<void(Communicator&)>& fn) {
  return run_on(std::make_shared<Context>(size), fn);
}

void run(int size, const std::function<void(Communicator&)>& fn) {
  run_with_stats(size, fn);
}

}  // namespace parsvd::pmpi
