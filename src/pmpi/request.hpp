// Request: the handle returned by the non-blocking point-to-point API
// (Communicator::isend / irecv).
//
// Lifecycle:
//   * isend posts the message immediately (buffered send, like
//     MPI_Ibsend with an unbounded buffer): the returned request is
//     already complete. Fault injection, payload caps and kill faults
//     fire at post time, exactly as for a blocking send.
//   * irecv registers interest in a (src, tag) channel and advances the
//     owner's fault-plan operation counter ONCE, at post time — so a
//     fault schedule aimed at op N stays deterministic no matter how
//     often the request is polled afterwards.
//   * test() is a non-blocking probe: it consumes the message if one is
//     deliverable (running the same duplicate-discard / checksum /
//     retransmit-recovery envelope as a blocking receive) and surfaces
//     dead-source and aborted-job conditions as the same typed errors.
//   * wait() blocks with the full envelope, watchdog-timeout and
//     backoff-retry semantics of Communicator::recv.
//   * a pending receive that is destroyed (or cancel()ed) is abandoned:
//     a message that later arrives simply stays queued for a future
//     receive on the same channel.
//
// Completion ordering across several requests comes from the free
// functions wait_any / wait_all below.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "linalg/matrix.hpp"
#include "support/error.hpp"

namespace parsvd::pmpi {

class Context;
class Communicator;

class Request {
 public:
  /// Empty (invalid) request; assign from isend/irecv to arm it.
  Request() = default;
  Request(Request&& other) noexcept;
  Request& operator=(Request&& other) noexcept;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request();

  bool valid() const { return ctx_ != nullptr; }
  bool done() const { return done_; }
  /// Peer rank: the source of a receive, the destination of a send.
  int peer() const { return peer_; }
  int tag() const { return tag_; }

  /// Non-blocking completion probe. Returns true once complete; throws
  /// RankDeadError / JobAbortedError when the message can no longer
  /// arrive. Never advances the fault-plan op counter (that happened at
  /// post time).
  bool test();

  /// Block until complete, with the blocking receive's full timeout /
  /// retry / recovery semantics.
  void wait();

  /// Abandon a pending receive. The request becomes invalid; a matching
  /// message that arrives later stays in the mailbox for a future
  /// receive on the same channel.
  void cancel();

  /// Move the completed receive's payload out (each form may be called
  /// once; requires done()).
  std::vector<std::byte> take_bytes();
  Matrix take_matrix();
  template <typename T>
  std::vector<T> take() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> payload = take_bytes();
    PARSVD_REQUIRE(payload.size() % sizeof(T) == 0,
                   "received payload not a whole number of elements");
    std::vector<T> out(payload.size() / sizeof(T));
    std::memcpy(out.data(), payload.data(), payload.size());
    return out;
  }

 private:
  friend class Communicator;
  friend std::size_t wait_any(std::span<Request> requests);
  friend void wait_all(std::span<Request> requests);

  enum class Kind { Send, Recv };

  Request(std::shared_ptr<Context> ctx, Kind kind, int owner, int peer,
          int tag, bool done);

  /// Drop the debug-mode channel registration (idempotent).
  void unregister();

  std::shared_ptr<Context> ctx_;
  Kind kind_ = Kind::Send;
  int owner_ = -1;
  int peer_ = -1;
  int tag_ = 0;
  bool done_ = false;
  bool taken_ = false;
  bool registered_ = false;
  std::vector<std::byte> payload_;
};

/// Block until one request in `requests` completes and return its index.
/// Already-complete, not-yet-taken receives are reported first (in index
/// order); buffered sends and consumed receives are skipped, and invalid
/// (moved-from / cancelled) slots are ignored. All pending receives must
/// belong to the same rank of the same context. Typical use is a
/// completion loop: wait_any, take the payload, repeat.
std::size_t wait_any(std::span<Request> requests);

/// Block until every valid request in `requests` is complete.
void wait_all(std::span<Request> requests);

}  // namespace parsvd::pmpi
