#include "pmpi/request.hpp"

#include <utility>

#include "pmpi/comm.hpp"

namespace parsvd::pmpi {

Request::Request(std::shared_ptr<Context> ctx, Kind kind, int owner, int peer,
                 int tag, bool done)
    : ctx_(std::move(ctx)),
      kind_(kind),
      owner_(owner),
      peer_(peer),
      tag_(tag),
      done_(done),
      registered_(kind == Kind::Recv && !done) {}

Request::Request(Request&& other) noexcept
    : ctx_(std::move(other.ctx_)),
      kind_(other.kind_),
      owner_(other.owner_),
      peer_(other.peer_),
      tag_(other.tag_),
      done_(other.done_),
      taken_(other.taken_),
      registered_(other.registered_),
      payload_(std::move(other.payload_)) {
  other.ctx_ = nullptr;
  other.registered_ = false;
}

Request& Request::operator=(Request&& other) noexcept {
  if (this != &other) {
    if (registered_ && ctx_) ctx_->unregister_irecv(owner_, peer_, tag_);
    ctx_ = std::move(other.ctx_);
    kind_ = other.kind_;
    owner_ = other.owner_;
    peer_ = other.peer_;
    tag_ = other.tag_;
    done_ = other.done_;
    taken_ = other.taken_;
    registered_ = other.registered_;
    payload_ = std::move(other.payload_);
    other.ctx_ = nullptr;
    other.registered_ = false;
  }
  return *this;
}

Request::~Request() { unregister(); }

void Request::unregister() {
  if (registered_ && ctx_) {
    ctx_->unregister_irecv(owner_, peer_, tag_);
    registered_ = false;
  }
}

bool Request::test() {
  PARSVD_REQUIRE(valid(), "test() on an empty Request");
  if (done_) return true;
  std::optional<std::vector<std::byte>> payload =
      ctx_->try_wait(owner_, peer_, tag_);
  if (!payload) return false;
  payload_ = std::move(*payload);
  done_ = true;
  unregister();
  return true;
}

void Request::wait() {
  PARSVD_REQUIRE(valid(), "wait() on an empty Request");
  if (done_) return;
  const Context::Channel channel{peer_, tag_};
  payload_ =
      ctx_->wait_any(owner_, std::span<const Context::Channel>(&channel, 1))
          .second;
  done_ = true;
  unregister();
}

void Request::cancel() {
  unregister();
  ctx_ = nullptr;
  payload_.clear();
}

std::vector<std::byte> Request::take_bytes() {
  PARSVD_REQUIRE(valid(), "take on an empty Request");
  PARSVD_REQUIRE(kind_ == Kind::Recv, "take on a send Request");
  PARSVD_REQUIRE(done_, "take on an incomplete Request (wait first)");
  PARSVD_REQUIRE(!taken_, "Request payload already taken");
  taken_ = true;
  return std::move(payload_);
}

Matrix Request::take_matrix() { return unpack_matrix(take_bytes()); }

std::size_t wait_any(std::span<Request> requests) {
  PARSVD_REQUIRE(!requests.empty(), "wait_any: no requests");
  Context* ctx = nullptr;
  int owner = -1;
  std::vector<Context::Channel> channels;
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Request& r = requests[i];
    if (!r.valid()) continue;
    if (r.done_) {
      // Completed but unconsumed receives are reported (once); buffered
      // sends and already-taken receives are inactive and skipped.
      if (r.kind_ == Request::Kind::Recv && !r.taken_) return i;
      continue;
    }
    PARSVD_REQUIRE(ctx == nullptr || (ctx == r.ctx_.get() && owner == r.owner_),
                   "wait_any: requests span different ranks or contexts");
    ctx = r.ctx_.get();
    owner = r.owner_;
    channels.push_back({r.peer_, r.tag_});
    index.push_back(i);
  }
  PARSVD_REQUIRE(!channels.empty(), "wait_any: no pending requests");
  auto [which, payload] = ctx->wait_any(
      owner, std::span<const Context::Channel>(channels.data(), channels.size()));
  Request& r = requests[index[which]];
  r.payload_ = std::move(payload);
  r.done_ = true;
  r.unregister();
  return index[which];
}

void wait_all(std::span<Request> requests) {
  for (Request& r : requests) {
    if (r.valid() && !r.done()) r.wait();
  }
}

}  // namespace parsvd::pmpi
