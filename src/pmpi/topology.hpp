// Pure schedule math for every SPMD protocol in the library.
//
// Each function here derives, from nothing but (rank, P) (plus the
// job-wide collective policy inputs), WHO a rank talks to and in WHAT
// order — no payloads, no threads, no Context. The production paths
// (Communicator collectives in comm.hpp/comm.cpp, tsqr_tree in
// core/tsqr.cpp) and the static verifier (src/verify) both consume
// these functions, so the schedule the model checker proves
// deadlock-free is, by construction, the schedule the solvers post.
// Changing a topology here changes both sides at once; a divergence is
// impossible rather than merely tested for.
//
// "P" is a COMMUNICATOR size, not necessarily the Context's world size:
// group communicators (Communicator::split / subgroup) call in with
// their group size and dense group ranks, so every tree/recursive-
// doubling shape — and the Auto policy thresholds — apply per group
// exactly as they do world-wide.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace parsvd::pmpi {

/// Collective algorithm selection (Context-wide so every rank of a job
/// takes the same code path — a per-call or per-size disagreement
/// between ranks would deadlock the collective).
///   Flat — root-loop topologies everywhere (the seed behaviour for
///          gather/reduce; also forces a flat one-level broadcast).
///   Tree — binomial-tree gather/reduce/bcast and recursive-doubling
///          allreduce regardless of size.
///   Auto — size-aware: eager flat for small payloads and small jobs,
///          log(P) trees once `tree_min_ranks` / `eager_threshold_bytes`
///          are crossed. Broadcast always takes the tree (receivers do
///          not know the payload size in advance, so a size-dependent
///          switch could not be made consistently); gather switches on
///          the rank count alone (per-rank contributions may differ in
///          size, and only the rank count is guaranteed to be agreed on
///          by everyone); reduce/allreduce switch on rank count and
///          payload size (lengths are symmetric by API contract).
enum class CollectiveAlgo { Auto, Flat, Tree };

namespace topology {

/// Lowest set bit of a positive rank (0 for vrank 0, the tree root).
constexpr int lowbit(int v) { return v & -v; }

/// Parent of `vrank` in the binomial tree rooted at virtual rank 0:
/// the lowest set bit cleared. Meaningless (returns 0) for the root.
constexpr int binomial_parent(int vrank) { return vrank & (vrank - 1); }

/// Number of ranks in the binomial subtree rooted at `vrank` out of
/// `p`: the span [vrank, vrank + lowbit(vrank)) clipped to p.
constexpr int binomial_subtree(int vrank, int p) {
  if (vrank == 0) return p;
  const int low = lowbit(vrank);
  return low < p - vrank ? low : p - vrank;
}

/// Children of `vrank` in the binomial tree over `p` ranks: vrank + m
/// for every power-of-two m below vrank's lowest set bit (below p for
/// the root), clipped to p. Gather/reduce receive in ASCENDING mask
/// order (small subtrees complete first while big ones are still
/// aggregating below); broadcast fans out in DESCENDING mask order
/// (big subtrees get the payload first so their forwarding overlaps
/// the small sends).
inline std::vector<int> binomial_children(int vrank, int p, bool ascending) {
  const int limit = vrank == 0 ? p : lowbit(vrank);
  std::vector<int> children;
  for (int mask = 1; mask < limit && vrank + mask < p; mask <<= 1) {
    children.push_back(vrank + mask);
  }
  if (!ascending) std::reverse(children.begin(), children.end());
  return children;
}

/// Recursive-doubling allreduce schedule (the classic MPICH shape):
/// the largest power-of-two core doubles; the surplus ranks fold their
/// contribution into an even partner before the doubling phase and
/// receive the finished result after it.
struct RdSchedule {
  /// True for the odd ranks below 2*rem: they send their contribution
  /// to `fold_peer`, then block for the finished result — no doubling.
  bool folded_out = false;
  /// The fold/fan-out partner (rank±1) for ranks below 2*rem; -1 for
  /// ranks that enter the doubling phase directly.
  int fold_peer = -1;
  /// Doubling-phase exchange partners, in mask order. Each exchange is
  /// a post-then-wait pair with the partner. Empty when folded out.
  std::vector<int> partners;
};

inline RdSchedule rd_schedule(int rank, int p) {
  RdSchedule s;
  const int m = static_cast<int>(std::bit_floor(static_cast<unsigned>(p)));
  const int rem = p - m;
  int vr;
  if (rank < 2 * rem) {
    s.fold_peer = rank % 2 == 1 ? rank - 1 : rank + 1;
    if (rank % 2 == 1) {
      s.folded_out = true;
      return s;
    }
    vr = rank / 2;
  } else {
    vr = rank - rem;
  }
  for (int mask = 1; mask < m; mask <<= 1) {
    const int partner_v = vr ^ mask;
    s.partners.push_back(partner_v < rem ? 2 * partner_v : partner_v + rem);
  }
  return s;
}

/// TSQR reduction-tree schedule: a pure function of (rank, p). A rank
/// is "active" at level l while rank % 2^(l+1) == 0, receiving from
/// partner rank + 2^l; it ships its R upward at the level of its
/// lowest set bit and later receives its down-sweep transform from the
/// same parent on the matching down-band tag. Every receive is
/// postable before the local panel factorization — the up-sweep
/// pipelining tsqr_tree exists for.
struct TsqrPlan {
  struct Level {
    int level;    ///< tree level (levels with no in-range partner skip)
    int partner;  ///< rank + 2^level, the subtree merged at this level
  };
  /// Up-sweep receives in ascending level order (empty for leaf-only
  /// ranks that merge nothing).
  std::vector<Level> recvs;
  /// Level at which this rank ships its R to `parent` (-1 for rank 0).
  int sent_level = -1;
  /// Parent rank for the up-sweep send and the down-sweep transform
  /// receive (-1 for rank 0).
  int parent = -1;
};

inline TsqrPlan tsqr_plan(int rank, int p) {
  TsqrPlan plan;
  for (int level = 0; (1 << level) < p; ++level) {
    const int stride = 1 << level;
    if (rank % (2 * stride) != 0) {
      plan.sent_level = level;
      plan.parent = rank - stride;
      break;
    }
    const int partner = rank + stride;
    if (partner >= p) continue;  // unpaired at this level; stay active
    plan.recvs.push_back({level, partner});
  }
  return plan;
}

// -------------------------------------------- collective topology policy
// Predicates over Context-wide settings plus inputs every rank agrees
// on (rank count; symmetric reduce lengths), so all ranks of one
// collective call pick the same topology. Communicator evaluates these
// with its live Context settings; the verifier sweeps them over every
// algo/threshold combination.

constexpr bool use_tree_gather(CollectiveAlgo algo, int p, int tree_min_ranks) {
  switch (algo) {
    case CollectiveAlgo::Flat:
      return false;
    case CollectiveAlgo::Tree:
      return p > 2;  // at p <= 2 the tree IS the flat topology
    case CollectiveAlgo::Auto:
      // Rank count is the only input every rank is guaranteed to agree
      // on (per-rank contribution sizes may straddle any byte
      // threshold), so Auto switches on it alone.
      return p >= tree_min_ranks;
  }
  return false;
}

constexpr bool use_tree_reduce(CollectiveAlgo algo, int p, std::uint64_t bytes,
                               int tree_min_ranks,
                               std::uint64_t eager_threshold_bytes) {
  switch (algo) {
    case CollectiveAlgo::Flat:
      return false;
    case CollectiveAlgo::Tree:
      return p > 2;
    case CollectiveAlgo::Auto:
      // reduce/allreduce lengths are symmetric by API contract, so a
      // size-aware switch is consistent across ranks.
      return p >= tree_min_ranks && bytes >= eager_threshold_bytes;
  }
  return false;
}

}  // namespace topology
}  // namespace parsvd::pmpi
