#include "pmpi/fault.hpp"

#include <algorithm>
#include <cstring>

#include "support/env.hpp"

namespace parsvd::pmpi {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Drop: return "drop";
    case FaultKind::Delay: return "delay";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Truncate: return "truncate";
    case FaultKind::Kill: return "kill";
  }
  return "?";
}

namespace {

// splitmix64 finalizer: the standard cheap bijective mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deterministic uniform draw in [0, 1) for one (seed, rank, op, stream).
double unit_draw(std::uint64_t seed, int rank, std::uint64_t op,
                 std::uint64_t stream) {
  const std::uint64_t h =
      mix64(seed ^ mix64(static_cast<std::uint64_t>(rank) ^ (stream << 32)) ^
            mix64(op * 0x2545f4914f6cdd1dull));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kMessageStream = 0x6d73ull;  // "ms"
constexpr std::uint64_t kKillStream = 0x6b6cull;     // "kl"
constexpr std::uint64_t kParamStream = 0x7072ull;    // "pr"

}  // namespace

FaultPlan FaultPlan::chaos(std::uint64_t seed, double drop_rate,
                           double delay_rate, double duplicate_rate,
                           double truncate_rate, double kill_rate) {
  FaultPlan plan;
  plan.seed_ = seed;
  plan.drop_ = std::clamp(drop_rate, 0.0, 1.0);
  plan.delay_ = std::clamp(delay_rate, 0.0, 1.0);
  plan.dup_ = std::clamp(duplicate_rate, 0.0, 1.0);
  plan.trunc_ = std::clamp(truncate_rate, 0.0, 1.0);
  plan.kill_ = std::clamp(kill_rate, 0.0, 1.0);
  plan.probabilistic_ =
      plan.drop_ + plan.delay_ + plan.dup_ + plan.trunc_ + plan.kill_ > 0.0;
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const auto seed = static_cast<std::uint64_t>(env::get_int("PARSVD_FAULT_SEED", 0));
  FaultPlan plan = chaos(seed, env::get_double("PARSVD_FAULT_DROP", 0.0),
                         env::get_double("PARSVD_FAULT_DELAY", 0.0),
                         env::get_double("PARSVD_FAULT_DUP", 0.0),
                         env::get_double("PARSVD_FAULT_TRUNC", 0.0),
                         env::get_double("PARSVD_FAULT_KILL", 0.0));
  plan.delay_ms = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, env::get_int("PARSVD_FAULT_DELAY_MS", 2)));
  const std::int64_t kill_rank = env::get_int("PARSVD_FAULT_KILL_RANK", -1);
  if (kill_rank >= 0) {
    plan.kill_rank(static_cast<int>(kill_rank),
                   static_cast<std::uint64_t>(
                       std::max<std::int64_t>(0, env::get_int("PARSVD_FAULT_KILL_AT", 0))));
  }
  if (env::get_bool("PARSVD_FAULT_PROTECT_ROOT", true)) plan.protect_rank(0);
  return plan;
}

FaultPlan& FaultPlan::kill_rank(int rank, std::uint64_t at_op) {
  events_.push_back(Event{rank, at_op, FaultKind::Kill, 0});
  return *this;
}

FaultPlan& FaultPlan::inject(int rank, std::uint64_t at_op, FaultKind kind,
                             std::uint32_t param) {
  events_.push_back(Event{rank, at_op, kind, param});
  return *this;
}

FaultPlan& FaultPlan::protect_rank(int rank) {
  protected_ranks_.push_back(rank);
  return *this;
}

bool FaultPlan::empty() const { return events_.empty() && !probabilistic_; }

bool FaultPlan::can_kill() const {
  if (kill_ > 0.0) return true;
  return std::any_of(events_.begin(), events_.end(), [](const Event& e) {
    return e.kind == FaultKind::Kill;
  });
}

bool FaultPlan::is_protected(int rank) const {
  return std::find(protected_ranks_.begin(), protected_ranks_.end(), rank) !=
         protected_ranks_.end();
}

std::optional<FaultDecision> FaultPlan::on_message(int src_rank,
                                                   std::uint64_t op) const {
  for (const Event& e : events_) {
    if (e.kind != FaultKind::Kill && e.rank == src_rank && e.op == op) {
      return FaultDecision{e.kind, e.param};
    }
  }
  if (!probabilistic_) return std::nullopt;
  const double u = unit_draw(seed_, src_rank, op, kMessageStream);
  double edge = drop_;
  if (u < edge) return FaultDecision{FaultKind::Drop, 0};
  edge += delay_;
  if (u < edge) return FaultDecision{FaultKind::Delay, delay_ms};
  edge += dup_;
  if (u < edge) return FaultDecision{FaultKind::Duplicate, 0};
  edge += trunc_;
  if (u < edge) {
    // Chop 1..16 deterministic bytes so both short and long payloads see
    // detectable corruption.
    const auto bytes = static_cast<std::uint32_t>(
        1 + static_cast<std::uint32_t>(
                unit_draw(seed_, src_rank, op, kParamStream) * 16.0));
    return FaultDecision{FaultKind::Truncate, bytes};
  }
  return std::nullopt;
}

bool FaultPlan::kills(int rank, std::uint64_t op) const {
  if (is_protected(rank)) return false;
  for (const Event& e : events_) {
    if (e.kind == FaultKind::Kill && e.rank == rank && e.op == op) return true;
  }
  if (kill_ <= 0.0) return false;
  return unit_draw(seed_, rank, op, kKillStream) < kill_;
}

std::uint64_t payload_checksum(const void* data, std::size_t size) {
  constexpr std::uint64_t kMul = 0xd6e8feb86659fd93ull;
  std::uint64_t h0 = 0x9e3779b97f4a7c15ull ^ size;
  std::uint64_t h1 = 0xbf58476d1ce4e5b9ull;
  std::uint64_t h2 = 0x94d049bb133111ebull;
  std::uint64_t h3 = 0x2545f4914f6cdd1dull;
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t n = size;
  // Four independent lanes: the multiply latency chains overlap, so the
  // loop streams at close to copy bandwidth instead of one mul per word.
  while (n >= 32) {
    std::uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, p, 8);
    std::memcpy(&w1, p + 8, 8);
    std::memcpy(&w2, p + 16, 8);
    std::memcpy(&w3, p + 24, 8);
    h0 = (h0 ^ w0) * kMul;
    h1 = (h1 ^ w1) * kMul;
    h2 = (h2 ^ w2) * kMul;
    h3 = (h3 ^ w3) * kMul;
    p += 32;
    n -= 32;
  }
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h0 = (h0 ^ w) * kMul;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, n);
    h0 = (h0 ^ w) * kMul;
  }
  std::uint64_t h = h0 ^ (h1 * 3) ^ (h2 * 5) ^ (h3 * 7);
  return mix64(h);
}

}  // namespace parsvd::pmpi
